package dialegg

import (
	"strings"
	"testing"
	"testing/quick"

	"dialegg/internal/dialects"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
)

// TestPlainForLoopSurvives: an scf.for without iter_args (no results) uses
// the zero-result scf_for encoding and must survive translation.
func TestPlainForLoopSurvives(t *testing.T) {
	src := `
func.func @sideloop(%n: index) -> index {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  scf.for %i = %c0 to %n step %c1 {
    "debug.probe"(%i) : (index) -> ()
    scf.yield
  }
  func.return %n : index
}`
	m, rep, reg := optimize(t, src, rules.ImgConv())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "scf.for") != 1 {
		t.Errorf("plain loop lost:\n%s", out)
	}
	if countOps(m, "debug.probe") != 1 {
		t.Errorf("opaque op inside plain loop lost:\n%s", out)
	}
	_ = rep
}

// TestIfInsideForRewrite: rewrites reach a division nested two region
// levels deep (if inside for).
func TestIfInsideForRewrite(t *testing.T) {
	src := `
func.func @deep(%n: index, %flag: i1) -> i64 {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %zero = arith.constant 0 : i64
  %c64 = arith.constant 64 : i64
  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %zero) -> (i64) {
    %v = scf.if %flag -> (i64) {
      %iv = arith.index_cast %i : index to i64
      %q = arith.divsi %iv, %c64 : i64
      scf.yield %q : i64
    } else {
      scf.yield %acc : i64
    }
    %next = arith.addi %acc, %v : i64
    scf.yield %next : i64
  }
  func.return %r : i64
}`
	m, _, reg := optimize(t, src, rules.ImgConv())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.divsi") != 0 {
		t.Errorf("division two regions deep not rewritten:\n%s", out)
	}
	if countOps(m, "arith.shrsi") != 1 {
		t.Errorf("expected shrsi two regions deep:\n%s", out)
	}
	if countOps(m, "scf.if") != 1 || countOps(m, "scf.for") != 1 {
		t.Errorf("control flow lost:\n%s", out)
	}
}

// TestNestedLoopCapturedIterArg: back-translation regression found by the
// differential fuzzer (poly seed 19 minimized). An op inside the inner
// loop captures the *outer* loop's iter_arg; during rebuild the captured
// leaf used to masquerade as evidence of the inner block's identity (same
// parent op name, same argument shapes as the outer block), binding the
// rebuilt inner block to the original outer one and leaving the inner
// iter_arg unbound.
func TestNestedLoopCapturedIterArg(t *testing.T) {
	src := `
func.func @nest(%x: f64) -> f64 {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %r = scf.for %i = %c0 to %c1 step %c1 iter_args(%a = %x) -> (f64) {
    %inner = scf.for %j = %c0 to %c1 step %c1 iter_args(%b = %x) -> (f64) {
      %cap = arith.addf %x, %a : f64
      scf.yield %b : f64
    }
    scf.yield %inner : f64
  }
  func.return %r : f64
}`
	m, _, reg := optimize(t, src, rules.Poly())
	if countOps(m, "scf.for") != 2 {
		t.Errorf("nested loops lost:\n%s", mlir.PrintModule(m, reg))
	}
}

// TestIterArgOnlyUsedInNestedRegion: the sibling regression (poly seed
// 44). The scf.for's iter_arg is referenced only inside the nested
// scf.if, so no top-level leaf of the loop's body identifies the loop's
// own block; rebuild used to fall back to unbound convention arguments
// and fail on the captured reference. Positional anchoring through the
// original op resolves it.
func TestIterArgOnlyUsedInNestedRegion(t *testing.T) {
	src := `
func.func @deep(%x: f64, %flag: i1) -> f64 {
  %c0 = arith.constant 0 : index
  %c2 = arith.constant 2 : index
  %c1 = arith.constant 1 : index
  %r = scf.for %i = %c0 to %c2 step %c1 iter_args(%acc = %x) -> (f64) {
    %v = scf.if %flag -> (f64) {
      scf.yield %x : f64
    } else {
      %s = arith.addf %acc, %x : f64
      scf.yield %s : f64
    }
    scf.yield %v : f64
  }
  func.return %r : f64
}`
	m, _, reg := optimize(t, src, rules.Poly())
	if countOps(m, "scf.for") != 1 || countOps(m, "scf.if") != 1 {
		t.Errorf("control flow lost:\n%s", mlir.PrintModule(m, reg))
	}
}

// TestVariadicCallEncodings: func_call_N suffixes select by operand count.
func TestVariadicCallEncodings(t *testing.T) {
	callRules := `
(function func_call_0 (AttrPair Type) Op :cost 7)
(function func_call_2 (Op Op AttrPair Type) Op :cost 7)
`
	src := `
func.func @caller(%x: f32) -> f32 {
  %a = func.call @zero() : () -> f32
  %b = func.call @two(%x, %a) : (f32, f32) -> f32
  %c = func.call @one(%b) : (f32) -> f32
  func.return %c : f32
}`
	m, reg := parseModule(t, src)
	opt := NewOptimizer(Options{RuleSources: []string{callRules}, KeepEggProgram: true})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// zero() and two() match declared encodings; one() has no encoding and
	// must be opaque — all three calls survive.
	if countOps(m, "func.call") != 3 {
		t.Errorf("calls lost:\n%s", mlir.PrintModule(m, reg))
	}
	if !strings.Contains(rep.EggProgram, "func_call_0") || !strings.Contains(rep.EggProgram, "func_call_2") {
		t.Errorf("variadic encodings unused:\n%s", rep.EggProgram)
	}
	if rep.NumOpaqueOps != 1 {
		t.Errorf("opaque ops = %d, want 1 (the unary call)", rep.NumOpaqueOps)
	}
}

// TestOpaqueOpWithRegionSurvives: an unregistered op carrying a region
// passes through untouched, interior included.
func TestOpaqueOpWithRegionSurvives(t *testing.T) {
	src := `
func.func @wrap(%x: f32) -> f32 {
  %r = "mydialect.sandbox"(%x) ({
    "mydialect.inner"() {depth = 1 : i64} : () -> ()
  }) : (f32) -> f32
  func.return %r : f32
}`
	m, _, reg := optimize(t, src, rules.VecNorm())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "mydialect.sandbox") != 1 || countOps(m, "mydialect.inner") != 1 {
		t.Errorf("opaque region op mangled:\n%s", out)
	}
	if !strings.Contains(out, "depth = 1 : i64") {
		t.Errorf("inner attribute lost:\n%s", out)
	}
}

// TestMultiFunctionModule: every function is optimized independently.
func TestMultiFunctionModule(t *testing.T) {
	src := `
func.func @f1(%x: i64) -> i64 {
  %c4 = arith.constant 4 : i64
  %r = arith.divsi %x, %c4 : i64
  func.return %r : i64
}
func.func @f2(%x: i64) -> i64 {
  %c16 = arith.constant 16 : i64
  %r = arith.divsi %x, %c16 : i64
  func.return %r : i64
}`
	m, _, reg := optimize(t, src, rules.ImgConv())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.divsi") != 0 || countOps(m, "arith.shrsi") != 2 {
		t.Errorf("per-function optimization incomplete:\n%s", out)
	}
	if !strings.Contains(out, "arith.constant 2 : i64") || !strings.Contains(out, "arith.constant 4 : i64") {
		t.Errorf("shift amounts wrong:\n%s", out)
	}
}

// TestChainedRewrites: constant folding feeds div-pow2 — saturation
// composes rules across "pass boundaries" (the paper's phase-ordering
// pitch). 2*128 folds to 256, which is then a power of two.
func TestChainedRewrites(t *testing.T) {
	src := `
func.func @chain(%x: i64) -> i64 {
  %c2 = arith.constant 2 : i64
  %c128 = arith.constant 128 : i64
  %c256 = arith.muli %c2, %c128 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}`
	m, _, reg := optimize(t, src, []string{rules.ArithCore, rules.ConstantFold, rules.DivPow2})
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.divsi") != 0 {
		t.Errorf("folded-constant division not rewritten (rule composition failed):\n%s", out)
	}
	if !strings.Contains(out, "arith.constant 8 : i64") {
		t.Errorf("expected shift by 8:\n%s", out)
	}
}

// TestIdempotentOptimization: optimizing an already-optimized module is a
// no-op (up to printing).
func TestIdempotentOptimization(t *testing.T) {
	src := `
func.func @f(%x: i64) -> i64 {
  %c256 = arith.constant 256 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}`
	m, _, reg := optimize(t, src, rules.ImgConv())
	first := mlir.PrintModule(m, reg)
	opt := NewOptimizer(Options{RuleSources: rules.ImgConv()})
	if _, err := opt.OptimizeModule(m); err != nil {
		t.Fatal(err)
	}
	second := mlir.PrintModule(m, reg)
	if first != second {
		t.Errorf("not idempotent:\n%s\nvs\n%s", first, second)
	}
}

// TestEmptyRuleSetIsIdentity: with declarations but no rules, output is
// semantically identical input.
func TestEmptyRuleSetIsIdentity(t *testing.T) {
	src := `
func.func @f(%x: f64) -> f64 {
  %c = arith.constant 2.5 : f64
  %r = arith.mulf %x, %c : f64
  func.return %r : f64
}`
	m, rep, reg := optimize(t, src, []string{rules.ArithCore, rules.ArithFloat})
	if rep.NumRules != 0 {
		t.Errorf("rules = %d, want 0", rep.NumRules)
	}
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.mulf") != 1 {
		t.Errorf("identity translation lost ops:\n%s", out)
	}
}

// TestParserNeverPanics feeds quick-generated garbage to the MLIR parser;
// it must return errors, not panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, reg := parseAttempt(s)
		_ = m
		_ = reg
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Structured near-misses (more likely to reach deep parser states).
	nearMisses := []string{
		"func.func @f(%x: i64) -> i64 { func.return %x : i64",
		"func.func @f() { %x = arith.constant : i64 }",
		"func.func @f() { scf.for %i = to step { } }",
		`func.func @f() { %r = "a.b"( : () -> i64 }`,
		"func.func @f(%x: tensor<axbxf64>) { func.return }",
		"module { module { } }",
	}
	for _, s := range nearMisses {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("parser panicked on %q: %v", s, r)
				}
			}()
			parseAttempt(s)
		}()
	}
}

func parseAttempt(s string) (*mlir.Module, error) {
	reg := dialectsRegistry()
	return mlir.ParseModule(s, reg)
}

func dialectsRegistry() *mlir.Registry {
	return dialects.NewRegistry()
}

// TestWhileLoopRewrite: the §7.2 rewrite reaches into scf.while's two
// regions (before with scf.condition, after with a block header).
func TestWhileLoopRewrite(t *testing.T) {
	src := `
func.func @halve(%n: i64) -> i64 {
  %zero = arith.constant 0 : i64
  %c1024 = arith.constant 1024 : i64
  %r = scf.while (%x = %n) : (i64) -> i64 {
    %cond = arith.cmpi sgt, %x, %zero : i64
    scf.condition(%cond) %x : i64
  } do {
  ^bb0(%y: i64):
    %next = arith.divsi %y, %c1024 : i64
    scf.yield %next : i64
  }
  func.return %r : i64
}`
	m, _, reg := optimize(t, src, rules.ImgConv())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.divsi") != 0 {
		t.Errorf("division inside while body not rewritten:\n%s", out)
	}
	if countOps(m, "arith.shrsi") != 1 {
		t.Errorf("expected one shrsi:\n%s", out)
	}
	if countOps(m, "scf.while") != 1 || countOps(m, "scf.condition") != 1 {
		t.Errorf("while structure lost:\n%s", out)
	}
	if !strings.Contains(out, "arith.constant 10 : i64") {
		t.Errorf("missing shift amount 10:\n%s", out)
	}
}

// TestHornerNeedsRuleInteraction: removing the distributivity rule from
// the §7.5 set prevents Horner's form from emerging — evidence for the
// paper's argument that the optimization arises from rule *interaction*
// that a hand-written pass would struggle to orchestrate.
func TestHornerNeedsRuleInteraction(t *testing.T) {
	src := `
func.func @poly(%x: f64, %a: f64, %b: f64, %c: f64) -> f64 {
  %c2 = arith.constant 2.0 : f64
  %x2 = math.powf %x, %c2 : f64
  %t1 = arith.mulf %b, %x : f64
  %t2 = arith.mulf %a, %x2 : f64
  %t3 = arith.addf %t1, %t2 : f64
  %t4 = arith.addf %c, %t3 : f64
  func.return %t4 : f64
}`
	full := rules.Horner
	crippled := strings.Replace(full, `(rewrite (arith_addf (arith_mulf ?m ?x ?a ?t) (arith_mulf ?n ?x ?a ?t) ?a ?t)
         (arith_mulf ?x (arith_addf ?m ?n ?a ?t) ?a ?t)
         :name "distribute")`, "", 1)
	if crippled == full {
		t.Fatal("failed to remove the distribute rule (text drifted)")
	}

	mFull, _, _ := optimize(t, src, []string{rules.ArithCore, rules.ArithFloat, full})
	mCrip, _, _ := optimize(t, src, []string{rules.ArithCore, rules.ArithFloat, crippled})

	if n := countOps(mFull, "arith.mulf"); n != 2 {
		t.Errorf("full rule set: mulf = %d, want 2 (Horner)", n)
	}
	if n := countOps(mCrip, "arith.mulf"); n <= 2 {
		t.Errorf("without distributivity: mulf = %d, expected > 2 (no Horner)", n)
	}
	// Both still eliminate powf (the expansion rule is independent).
	if countOps(mFull, "math.powf") != 0 || countOps(mCrip, "math.powf") != 0 {
		t.Error("pow expansion should fire in both configurations")
	}
}

// TestDeadLoopWithOpaqueBodySurvives: a loop whose result is unused must
// not be swept when its body holds an opaque (potentially effectful) op.
func TestDeadLoopWithOpaqueBodySurvives(t *testing.T) {
	src := `
func.func @keep(%n: index) -> index {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %zero = arith.constant 0 : i64
  %dead = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %zero) -> (i64) {
    %probe = "debug.effect"(%acc) : (i64) -> i64
    scf.yield %probe : i64
  }
  func.return %n : index
}`
	m, _, reg := optimize(t, src, rules.ImgConv())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "scf.for") != 1 || countOps(m, "debug.effect") != 1 {
		t.Errorf("dead loop with opaque body was swept:\n%s", out)
	}
}

// TestExplainRewrites: the optimizer can attach a proof to every rewritten
// operation — why the original equals its replacement.
func TestExplainRewrites(t *testing.T) {
	src := `
func.func @f(%x: i64) -> i64 {
  %c256 = arith.constant 256 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}`
	m, _ := parseModule(t, src)
	opt := NewOptimizer(Options{RuleSources: rules.ImgConv(), ExplainRewrites: true})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RewriteExplanations) != 1 {
		t.Fatalf("explanations = %d, want 1 (the divsi):\n%v", len(rep.RewriteExplanations), rep.RewriteExplanations)
	}
	proof := rep.RewriteExplanations[0]
	for _, want := range []string{"arith.divsi rewritten to arith.shrsi", "div-pow2-to-shift", "arith_shrsi"} {
		if !strings.Contains(proof, want) {
			t.Errorf("proof missing %q:\n%s", want, proof)
		}
	}
	t.Logf("proof:\n%s", proof)
}

// TestExplainRewritesNested: proofs also cover rewrites inside loop bodies.
func TestExplainRewritesNested(t *testing.T) {
	src := `
func.func @loop(%n: index) -> i64 {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %zero = arith.constant 0 : i64
  %c64 = arith.constant 64 : i64
  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %zero) -> (i64) {
    %iv = arith.index_cast %i : index to i64
    %q = arith.divsi %iv, %c64 : i64
    %next = arith.addi %acc, %q : i64
    scf.yield %next : i64
  }
  func.return %r : i64
}`
	m, _ := parseModule(t, src)
	opt := NewOptimizer(Options{RuleSources: rules.ImgConv(), ExplainRewrites: true})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RewriteExplanations) != 1 {
		t.Fatalf("explanations = %d, want 1:\n%v", len(rep.RewriteExplanations), rep.RewriteExplanations)
	}
	if !strings.Contains(rep.RewriteExplanations[0], "div-pow2-to-shift") {
		t.Errorf("nested proof missing rule name:\n%s", rep.RewriteExplanations[0])
	}
}

// TestExplainRewritesNoChange: nothing to explain when nothing rewrote.
func TestExplainRewritesNoChange(t *testing.T) {
	src := `
func.func @f(%x: i64) -> i64 {
  %c100 = arith.constant 100 : i64
  %r = arith.divsi %x, %c100 : i64
  func.return %r : i64
}`
	m, _ := parseModule(t, src)
	opt := NewOptimizer(Options{RuleSources: rules.ImgConv(), ExplainRewrites: true})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RewriteExplanations) != 0 {
		t.Errorf("unexpected explanations: %v", rep.RewriteExplanations)
	}
}
