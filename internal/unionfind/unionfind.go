// Package unionfind implements a disjoint-set forest used by the e-graph to
// track equivalence classes of e-nodes.
//
// The implementation uses union by size and path halving, giving effectively
// amortized-constant Find and Union. Element identifiers are dense
// non-negative integers handed out by MakeSet, which matches how e-class IDs
// are allocated by the e-graph.
package unionfind

import "sync/atomic"

// UF is a disjoint-set forest over dense integer identifiers.
//
// The zero value is an empty forest ready for use. Find is safe to call
// concurrently with other Finds (its path-halving writes use atomics and
// only ever move pointers closer to the root); MakeSet and Union require
// external synchronization against everything else.
type UF struct {
	parent []atomic.Uint32
	size   []uint32

	// counting gates the finds counter. It is a plain bool: toggled only
	// from serial phases (before concurrent Finds start), read by Finds on
	// every call — a predictable branch, so the counter costs nothing when
	// observability is off. finds itself is atomic because the match phase
	// calls Find from many goroutines.
	counting bool
	finds    atomic.Uint64
}

// New returns an empty forest. Equivalent to new(UF); provided for symmetry
// with NewWithCapacity.
func New() *UF {
	return &UF{}
}

// NewWithCapacity returns an empty forest with space preallocated for n
// elements.
func NewWithCapacity(n int) *UF {
	return &UF{
		parent: make([]atomic.Uint32, 0, n),
		size:   make([]uint32, 0, n),
	}
}

// Len reports the number of elements ever created with MakeSet.
func (u *UF) Len() int { return len(u.parent) }

// MakeSet creates a fresh singleton set and returns its identifier.
// Identifiers are allocated densely starting at 0.
func (u *UF) MakeSet() uint32 {
	id := uint32(len(u.parent))
	u.parent = append(u.parent, atomic.Uint32{})
	u.parent[id].Store(id)
	u.size = append(u.size, 1)
	return id
}

// Find returns the canonical representative of x's set, applying path
// halving along the way. x must have been returned by MakeSet. Concurrent
// Finds are safe: halving only rewrites a pointer to an ancestor, so
// races between halvings converge to the same roots.
func (u *UF) Find(x uint32) uint32 {
	if u.counting {
		u.finds.Add(1)
	}
	p := u.parent
	for {
		px := p[x].Load()
		if px == x {
			return x
		}
		gp := p[px].Load()
		if gp != px {
			p[x].Store(gp)
		}
		x = gp
	}
}

// SameSet reports whether a and b are in the same set.
func (u *UF) SameSet(a, b uint32) bool { return u.Find(a) == u.Find(b) }

// Union merges the sets containing a and b and returns the representative of
// the merged set. When the sets differ in size the larger set's root wins,
// which keeps trees shallow. If a and b are already in the same set the
// shared root is returned unchanged.
func (u *UF) Union(a, b uint32) uint32 {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb].Store(ra)
	u.size[ra] += u.size[rb]
	return ra
}

// UnionInto merges b's set into a's set so that a's current root becomes the
// representative, regardless of size. The e-graph uses this when the caller
// must control which ID survives (e.g. to keep the ID stored in an
// analysis table valid).
func (u *UF) UnionInto(keep, other uint32) uint32 {
	rk, ro := u.Find(keep), u.Find(other)
	if rk == ro {
		return rk
	}
	u.parent[ro].Store(rk)
	u.size[rk] += u.size[ro]
	return rk
}

// SizeOf returns the number of elements in x's set.
func (u *UF) SizeOf(x uint32) int { return int(u.size[u.Find(x)]) }

// SetCounting enables or disables the Find-call counter. Must only be
// called while no concurrent Finds are running (the saturation runner
// toggles it between iterations' serial sections).
func (u *UF) SetCounting(on bool) { u.counting = on }

// Finds returns the number of Find calls recorded while counting was
// enabled.
func (u *UF) Finds() uint64 { return u.finds.Load() }

// Reset discards all sets, retaining allocated capacity.
func (u *UF) Reset() {
	u.parent = u.parent[:0]
	u.size = u.size[:0]
}
