package dialegg

import (
	"fmt"
	"sort"

	"dialegg/internal/mlir"
	"dialegg/internal/sexp"
)

// Translation is the result of translating one function body to Egglog:
// a straight-line sequence of let bindings (§5.3, SSA values become
// let-bindings) plus the bookkeeping needed to translate back.
type Translation struct {
	// Lets are the (let opN term) commands in definition order.
	Lets []*sexp.Node
	// RootName is the let binding holding the function body's block term;
	// extraction starts there.
	RootName string
	// ValueIDs maps the i64 identifier inside (Value id type) terms back
	// to the original SSA value (block argument or opaque result).
	ValueIDs map[int64]*mlir.Value
	// OpaqueOps maps a Value id to the original operation whose result it
	// stands for, so back-translation can re-emit it.
	OpaqueOps map[int64]*mlir.Operation
	// NumTranslated counts MLIR ops that received a structural encoding.
	NumTranslated int
	// NumOpaque counts MLIR ops that became opaque Values.
	NumOpaque int
	// OpLets maps each translated operation to its let-binding name, so
	// callers can recover the op's e-node after the lets execute (used by
	// rewrite explanations).
	OpLets map[*mlir.Operation]string
}

// translator carries state across one function translation.
type translator struct {
	encs    *Encodings
	codecs  *Codecs
	out     *Translation
	letName map[*mlir.Value]string
	// opName maps zero-result translated ops to their let names (they have
	// no SSA value to key on).
	opLet   map[*mlir.Operation]string
	counter int
	nextID  int64
}

// TranslateFunc translates the body of a func.func into egglog let
// bindings. The function must have a single-block body (structured control
// flow nests in regions, which are handled recursively).
func TranslateFunc(f *mlir.Operation, encs *Encodings) (*Translation, error) {
	return TranslateFuncWithCodecs(f, encs, nil)
}

// TranslateFuncWithCodecs is TranslateFunc with custom type/attribute
// eggifiers (§5.2).
func TranslateFuncWithCodecs(f *mlir.Operation, encs *Encodings, codecs *Codecs) (*Translation, error) {
	if f.Name != "func.func" {
		return nil, fmt.Errorf("dialegg: expected func.func, got %s", f.Name)
	}
	entry := f.Regions[0].First()
	if entry == nil {
		return nil, fmt.Errorf("dialegg: function has no body")
	}
	tr := &translator{
		encs:   encs,
		codecs: codecs,
		out: &Translation{
			ValueIDs:  make(map[int64]*mlir.Value),
			OpaqueOps: make(map[int64]*mlir.Operation),
		},
		letName: make(map[*mlir.Value]string),
		opLet:   make(map[*mlir.Operation]string),
	}
	tr.out.OpLets = tr.opLet
	// Function arguments become Value terms (§5.4 line 3).
	for _, arg := range entry.Args {
		if _, err := tr.emitValue(arg); err != nil {
			return nil, err
		}
	}
	blkTerm, err := tr.translateBlock(entry)
	if err != nil {
		return nil, err
	}
	root := tr.fresh()
	tr.emitLet(root, blkTerm)
	tr.out.RootName = root
	return tr.out, nil
}

func (t *translator) fresh() string {
	name := fmt.Sprintf("op%d", t.counter)
	t.counter++
	return name
}

func (t *translator) emitLet(name string, term *sexp.Node) {
	t.out.Lets = append(t.out.Lets, sexp.List(sexp.Symbol("let"), sexp.Symbol(name), term))
}

// emitValue creates the (Value id type) binding for a block argument or
// opaque result and returns its let name.
func (t *translator) emitValue(v *mlir.Value) (string, error) {
	if name, ok := t.letName[v]; ok {
		return name, nil
	}
	id := t.nextID
	t.nextID++
	t.out.ValueIDs[id] = v
	name := t.fresh()
	tt, err := t.codecs.TypeToTerm(v.Typ)
	if err != nil {
		return "", err
	}
	term := sexp.List(sexp.Symbol("Value"), sexp.Int(id), tt)
	t.emitLet(name, term)
	t.letName[v] = name
	return name, nil
}

// translateBlock translates every op of b (emitting lets) and returns the
// (Blk (vec-of ...)) term listing them in order.
func (t *translator) translateBlock(b *mlir.Block) (*sexp.Node, error) {
	vec := sexp.List(sexp.Symbol("vec-of"))
	for _, op := range b.Ops {
		name, err := t.translateOp(op)
		if err != nil {
			return nil, err
		}
		vec.List = append(vec.List, sexp.Symbol(name))
	}
	return sexp.List(sexp.Symbol("Blk"), vec), nil
}

// translateOp translates one operation, returning the let name bound to
// its term (the op's result value for single-result ops).
func (t *translator) translateOp(op *mlir.Operation) (string, error) {
	if name, ok := t.opLet[op]; ok {
		return name, nil
	}
	enc, encodable := t.encs.Lookup(op.Name, len(op.Operands))
	if encodable {
		name, err := t.translateEncoded(op, enc)
		if err == nil {
			return name, nil
		}
		// An encoding mismatch (attribute/region/result layout) degrades
		// to the opaque path rather than failing the translation.
	}
	return t.translateOpaque(op)
}

// attrTermsFor orders the op's attributes alphabetically and renders them,
// synthesizing a default fastmath<none> when the encoding expects one more
// attribute than the op carries (§4.2; the paper's example emits fmnone
// for ops without an explicit fastmath flag).
func (t *translator) attrTermsFor(op *mlir.Operation, want int) ([]*sexp.Node, error) {
	attrs := append([]mlir.NamedAttribute(nil), op.Attrs...)
	if len(attrs) == want-1 {
		if _, has := mlir.GetAttr(attrs, "fastmath"); !has {
			attrs = append(attrs, mlir.NamedAttribute{
				Name: "fastmath",
				Attr: mlir.FastMathAttr{Flag: mlir.FastMathNone},
			})
		}
	}
	if len(attrs) != want {
		return nil, fmt.Errorf("op has %d attributes, encoding wants %d", len(attrs), want)
	}
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	terms := make([]*sexp.Node, len(attrs))
	for i, na := range attrs {
		term, err := t.codecs.NamedAttrToTerm(na)
		if err != nil {
			return nil, err
		}
		terms[i] = term
	}
	return terms, nil
}

func (t *translator) translateEncoded(op *mlir.Operation, enc *OpEncoding) (string, error) {
	if len(op.Results) > 1 {
		return "", fmt.Errorf("multi-result op")
	}
	if len(op.Regions) != enc.NumRegions {
		return "", fmt.Errorf("op has %d regions, encoding wants %d", len(op.Regions), enc.NumRegions)
	}
	if enc.HasResultType && len(op.Results) != 1 {
		return "", fmt.Errorf("encoding carries a result type but op has %d results", len(op.Results))
	}

	attrTerms, err := t.attrTermsFor(op, enc.NumAttrs)
	if err != nil {
		return "", err
	}

	term := sexp.List(sexp.Symbol(enc.EggName))
	for _, operand := range op.Operands {
		name, err := t.operandName(operand)
		if err != nil {
			return "", err
		}
		term.List = append(term.List, sexp.Symbol(name))
	}
	term.List = append(term.List, attrTerms...)
	for _, region := range op.Regions {
		regTerm, err := t.translateRegion(region)
		if err != nil {
			return "", err
		}
		term.List = append(term.List, regTerm)
	}
	if enc.HasResultType {
		tt, err := t.codecs.TypeToTerm(op.Results[0].Typ)
		if err != nil {
			return "", err
		}
		term.List = append(term.List, tt)
	}

	name := t.fresh()
	t.emitLet(name, term)
	t.opLet[op] = name
	if len(op.Results) == 1 {
		t.letName[op.Results[0]] = name
	}
	t.out.NumTranslated++
	return name, nil
}

// translateRegion emits lets for nested block arguments and ops, returning
// the (Reg (vec-of (Blk ...))) term.
func (t *translator) translateRegion(r *mlir.Region) (*sexp.Node, error) {
	blkVec := sexp.List(sexp.Symbol("vec-of"))
	for _, b := range r.Blocks {
		for _, arg := range b.Args {
			if _, err := t.emitValue(arg); err != nil {
				return nil, err
			}
		}
		blkTerm, err := t.translateBlock(b)
		if err != nil {
			return nil, err
		}
		blkVec.List = append(blkVec.List, blkTerm)
	}
	return sexp.List(sexp.Symbol("Reg"), blkVec), nil
}

// operandName resolves the let name of an operand's defining term.
func (t *translator) operandName(v *mlir.Value) (string, error) {
	if name, ok := t.letName[v]; ok {
		return name, nil
	}
	// Block arguments are pre-registered; an unseen value here is a
	// forward reference, which SSA rules out.
	if v.IsBlockArg() {
		return t.emitValue(v)
	}
	return "", fmt.Errorf("dialegg: operand %s used before definition", v)
}

// translateOpaque emits the (Value id type) stand-in for an operation with
// no (matching) encoding. Multi-result ops get one Value per result;
// zero-result ops get a None-typed Value that only serves to keep their
// block position.
func (t *translator) translateOpaque(op *mlir.Operation) (string, error) {
	t.out.NumOpaque++
	id := t.nextID
	t.nextID++
	t.out.OpaqueOps[id] = op

	name := t.fresh()
	var typ mlir.Type = mlir.NoneType{}
	if len(op.Results) >= 1 {
		typ = op.Results[0].Typ
	}
	tt, err := t.codecs.TypeToTerm(typ)
	if err != nil {
		return "", err
	}
	term := sexp.List(sexp.Symbol("Value"), sexp.Int(id), tt)
	t.emitLet(name, term)
	t.opLet[op] = name
	if len(op.Results) >= 1 {
		t.letName[op.Results[0]] = name
		t.out.ValueIDs[id] = op.Results[0]
	}
	// Extra results each get their own Value binding keyed by fresh ids.
	for i := 1; i < len(op.Results); i++ {
		id2 := t.nextID
		t.nextID++
		t.out.OpaqueOps[id2] = op
		t.out.ValueIDs[id2] = op.Results[i]
		n2 := t.fresh()
		tt2, err := t.codecs.TypeToTerm(op.Results[i].Typ)
		if err != nil {
			return "", err
		}
		t.emitLet(n2, sexp.List(sexp.Symbol("Value"), sexp.Int(id2), tt2))
		t.letName[op.Results[i]] = n2
	}
	return name, nil
}
