package dialects

import (
	"fmt"

	"dialegg/internal/mlir"
)

// RegisterFunc registers the func dialect: func.func, func.return,
// func.call.
func RegisterFunc(r *mlir.Registry) {
	r.Register(&mlir.OpDef{
		Name: "func.func",
		Parse: func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
			sym, err := p.ParseSymbolName()
			if err != nil {
				return nil, err
			}
			if err := p.Expect("("); err != nil {
				return nil, err
			}
			var argSpecs []mlir.BlockArgSpec
			var inTypes []mlir.Type
			if !p.Accept(")") {
				for {
					name, err := p.ParsePercentName()
					if err != nil {
						return nil, err
					}
					if err := p.Expect(":"); err != nil {
						return nil, err
					}
					t, err := p.ParseType()
					if err != nil {
						return nil, err
					}
					argSpecs = append(argSpecs, mlir.BlockArgSpec{Name: name, Type: t})
					inTypes = append(inTypes, t)
					if !p.Accept(",") {
						break
					}
				}
				if err := p.Expect(")"); err != nil {
					return nil, err
				}
			}
			var outTypes []mlir.Type
			if p.Accept("->") {
				outTypes, err = p.ParseResultTypes()
				if err != nil {
					return nil, err
				}
			}
			var attrs []mlir.NamedAttribute
			if p.AcceptKeyword("attributes") {
				attrs, err = p.ParseOptionalAttrDict()
				if err != nil {
					return nil, err
				}
			}
			op := mlir.NewOperation("func.func", nil, nil)
			op.Attrs = attrs
			op.SetAttr("sym_name", mlir.StringAttr{Value: sym})
			op.SetAttr("function_type", mlir.TypeAttr{Type: mlir.FunctionType{Inputs: inTypes, Results: outTypes}})
			region := op.AddRegion()
			if err := p.ParseRegionInto(region, argSpecs); err != nil {
				return nil, err
			}
			return op, nil
		},
		Print: func(ps *mlir.PrintState, op *mlir.Operation) {
			ft, _ := mlir.FuncType(op)
			ps.Write(" @" + mlir.FuncName(op) + "(")
			entry := op.Regions[0].First()
			for i, arg := range entry.Args {
				if i > 0 {
					ps.Write(", ")
				}
				ps.Write(ps.ValueName(arg) + ": " + arg.Typ.String())
			}
			ps.Write(")")
			if len(ft.Results) > 0 {
				ps.Write(" -> ")
				if len(ft.Results) == 1 {
					ps.Write(ft.Results[0].String())
				} else {
					ps.Write("(")
					for i, t := range ft.Results {
						if i > 0 {
							ps.Write(", ")
						}
						ps.Write(t.String())
					}
					ps.Write(")")
				}
			}
			extra := 0
			for _, na := range op.Attrs {
				if na.Name != "sym_name" && na.Name != "function_type" {
					extra++
				}
			}
			if extra > 0 {
				ps.Write(" attributes")
				ps.PrintAttrDict(op.Attrs, "sym_name", "function_type")
			}
			ps.Write(" ")
			ps.PrintRegion(op.Regions[0])
		},
		Verify: func(op *mlir.Operation) error {
			if _, ok := op.GetAttr("sym_name"); !ok {
				return fmt.Errorf("missing sym_name")
			}
			ft, ok := mlir.FuncType(op)
			if !ok {
				return fmt.Errorf("missing function_type")
			}
			if len(op.Regions) != 1 || len(op.Regions[0].Blocks) == 0 {
				return fmt.Errorf("expected one region with an entry block")
			}
			entry := op.Regions[0].First()
			if len(entry.Args) != len(ft.Inputs) {
				return fmt.Errorf("entry block has %d args, function type has %d inputs", len(entry.Args), len(ft.Inputs))
			}
			for i, a := range entry.Args {
				if !mlir.TypeEqual(a.Typ, ft.Inputs[i]) {
					return fmt.Errorf("entry arg %d has type %s, signature says %s", i, a.Typ, ft.Inputs[i])
				}
			}
			return nil
		},
	})

	r.Register(&mlir.OpDef{
		Name:   "func.return",
		Traits: mlir.Traits{Terminator: true},
		Parse: func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
			op := mlir.NewOperation("func.return", nil, nil)
			// Operands are optional: `func.return` or `func.return %a, %b : t, t`.
			if p.PeekByteIsPercent() {
				operands, err := p.ParseOperandList()
				if err != nil {
					return nil, err
				}
				if err := p.Expect(":"); err != nil {
					return nil, err
				}
				for i := range operands {
					t, err := p.ParseType()
					if err != nil {
						return nil, err
					}
					if !mlir.TypeEqual(operands[i].Typ, t) {
						return nil, p.Errf("return operand %d has type %s, written %s", i, operands[i].Typ, t)
					}
					if i < len(operands)-1 {
						if err := p.Expect(","); err != nil {
							return nil, err
						}
					}
				}
				op.Operands = operands
			}
			return op, nil
		},
		Print: func(ps *mlir.PrintState, op *mlir.Operation) {
			if len(op.Operands) > 0 {
				ps.Write(" ")
				ps.PrintOperands(op.Operands)
				ps.Write(" : ")
				for i, o := range op.Operands {
					if i > 0 {
						ps.Write(", ")
					}
					ps.Write(o.Typ.String())
				}
			}
		},
	})

	r.Register(&mlir.OpDef{
		Name: "func.call",
		Parse: func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
			callee, err := p.ParseSymbolName()
			if err != nil {
				return nil, err
			}
			if err := p.Expect("("); err != nil {
				return nil, err
			}
			var operands []*mlir.Value
			if !p.Accept(")") {
				operands, err = p.ParseOperandList()
				if err != nil {
					return nil, err
				}
				if err := p.Expect(")"); err != nil {
					return nil, err
				}
			}
			if err := p.Expect(":"); err != nil {
				return nil, err
			}
			ft, err := p.ParseType()
			if err != nil {
				return nil, err
			}
			fnType, ok := ft.(mlir.FunctionType)
			if !ok {
				return nil, p.Errf("func.call expects a function type, got %s", ft)
			}
			if len(fnType.Inputs) != len(operands) {
				return nil, p.Errf("func.call has %d operands, type wants %d", len(operands), len(fnType.Inputs))
			}
			op := mlir.NewOperation("func.call", operands, fnType.Results)
			op.SetAttr("callee", mlir.SymbolRefAttr{Symbol: callee})
			return op, nil
		},
		Print: func(ps *mlir.PrintState, op *mlir.Operation) {
			callee, _ := op.GetAttr("callee")
			ps.Write(" " + callee.String() + "(")
			ps.PrintOperands(op.Operands)
			ps.Write(") : (")
			for i, o := range op.Operands {
				if i > 0 {
					ps.Write(", ")
				}
				ps.Write(o.Typ.String())
			}
			ps.Write(") -> ")
			ps.PrintResultTypes(op)
		},
		Verify: func(op *mlir.Operation) error {
			if _, ok := op.GetAttr("callee"); !ok {
				return fmt.Errorf("missing callee")
			}
			return nil
		},
	})
}
