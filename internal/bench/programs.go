// Package bench builds the paper's five benchmarks (§8.2, Table 1) as MLIR
// programs, generates their workloads, and provides the harness that
// regenerates Figure 3 (speedups), Table 1 (dialect op counts), and
// Table 2 (compilation-time breakdown and the NMM scalability study).
package bench

import (
	"fmt"
	"strings"
)

// ImgConvSource builds the image-conversion benchmark: for every pixel of
// an HxWx3 image, gray = (77*R + 150*G + 29*B) / 256. The division by 256
// is the div-pow2 rewrite target (§7.2). The paper uses 3840x2160.
func ImgConvSource(h, w int64) string {
	return fmt.Sprintf(`
func.func @img2gray(%%img: tensor<%[1]dx%[2]dx3xi64>) -> tensor<%[1]dx%[2]dxi64> {
  %%c0 = arith.constant 0 : index
  %%c1 = arith.constant 1 : index
  %%c2 = arith.constant 2 : index
  %%h = arith.constant %[1]d : index
  %%w = arith.constant %[2]d : index
  %%wr = arith.constant 77 : i64
  %%wg = arith.constant 150 : i64
  %%wb = arith.constant 29 : i64
  %%c256 = arith.constant 256 : i64
  %%init = tensor.empty() : tensor<%[1]dx%[2]dxi64>
  %%out = scf.for %%i = %%c0 to %%h step %%c1 iter_args(%%acc = %%init) -> (tensor<%[1]dx%[2]dxi64>) {
    %%row = scf.for %%j = %%c0 to %%w step %%c1 iter_args(%%acc2 = %%acc) -> (tensor<%[1]dx%[2]dxi64>) {
      %%r = tensor.extract %%img[%%i, %%j, %%c0] : tensor<%[1]dx%[2]dx3xi64>
      %%g = tensor.extract %%img[%%i, %%j, %%c1] : tensor<%[1]dx%[2]dx3xi64>
      %%b = tensor.extract %%img[%%i, %%j, %%c2] : tensor<%[1]dx%[2]dx3xi64>
      %%tr = arith.muli %%r, %%wr : i64
      %%tg = arith.muli %%g, %%wg : i64
      %%tb = arith.muli %%b, %%wb : i64
      %%s1 = arith.addi %%tr, %%tg : i64
      %%s2 = arith.addi %%s1, %%tb : i64
      %%gray = arith.divsi %%s2, %%c256 : i64
      %%upd = tensor.insert %%gray into %%acc2[%%i, %%j] : tensor<%[1]dx%[2]dxi64>
      scf.yield %%upd : tensor<%[1]dx%[2]dxi64>
    }
    scf.yield %%row : tensor<%[1]dx%[2]dxi64>
  }
  func.return %%out : tensor<%[1]dx%[2]dxi64>
}
`, h, w)
}

// VecNormSource builds the vector-normalization benchmark: the inverse of
// the norm of n 3D vectors, compiled with fast-math. The 1/sqrt pattern is
// the fast-inverse-sqrt rewrite target (§7.3). The paper uses n=1,000,000.
func VecNormSource(n int64) string {
	return fmt.Sprintf(`
func.func @vec_norm(%%vs: tensor<%[1]dx3xf32>) -> tensor<%[1]dxf32> {
  %%c0 = arith.constant 0 : index
  %%c1 = arith.constant 1 : index
  %%c2 = arith.constant 2 : index
  %%n = arith.constant %[1]d : index
  %%one = arith.constant 1.0 : f32
  %%init = tensor.empty() : tensor<%[1]dxf32>
  %%out = scf.for %%i = %%c0 to %%n step %%c1 iter_args(%%acc = %%init) -> (tensor<%[1]dxf32>) {
    %%x = tensor.extract %%vs[%%i, %%c0] : tensor<%[1]dx3xf32>
    %%y = tensor.extract %%vs[%%i, %%c1] : tensor<%[1]dx3xf32>
    %%z = tensor.extract %%vs[%%i, %%c2] : tensor<%[1]dx3xf32>
    %%xx = arith.mulf %%x, %%x fastmath<fast> : f32
    %%yy = arith.mulf %%y, %%y fastmath<fast> : f32
    %%zz = arith.mulf %%z, %%z fastmath<fast> : f32
    %%s1 = arith.addf %%xx, %%yy fastmath<fast> : f32
    %%s2 = arith.addf %%s1, %%zz fastmath<fast> : f32
    %%norm = math.sqrt %%s2 fastmath<fast> : f32
    %%inv = arith.divf %%one, %%norm fastmath<fast> : f32
    %%upd = tensor.insert %%inv into %%acc[%%i] : tensor<%[1]dxf32>
    scf.yield %%upd : tensor<%[1]dxf32>
  }
  func.return %%out : tensor<%[1]dxf32>
}
`, n)
}

// PolySource builds the polynomial benchmark: n 3rd-degree polynomials,
// each evaluated at a runtime point x via naive powers — the Horner
// rewrite target (§7.5). x is a function argument so classical constant
// folding cannot remove the powf ops. The paper uses n=1,000,000.
func PolySource(n int64) string {
	return fmt.Sprintf(`
func.func @poly_eval(%%coeffs: tensor<%[1]dx4xf64>, %%x: f64) -> tensor<%[1]dxf64> {
  %%c0 = arith.constant 0 : index
  %%c1 = arith.constant 1 : index
  %%c2 = arith.constant 2 : index
  %%c3 = arith.constant 3 : index
  %%n = arith.constant %[1]d : index
  %%two = arith.constant 2.0 : f64
  %%three = arith.constant 3.0 : f64
  %%init = tensor.empty() : tensor<%[1]dxf64>
  %%out = scf.for %%i = %%c0 to %%n step %%c1 iter_args(%%acc = %%init) -> (tensor<%[1]dxf64>) {
    %%a0 = tensor.extract %%coeffs[%%i, %%c0] : tensor<%[1]dx4xf64>
    %%a1 = tensor.extract %%coeffs[%%i, %%c1] : tensor<%[1]dx4xf64>
    %%a2 = tensor.extract %%coeffs[%%i, %%c2] : tensor<%[1]dx4xf64>
    %%a3 = tensor.extract %%coeffs[%%i, %%c3] : tensor<%[1]dx4xf64>
    %%x2 = math.powf %%x, %%two : f64
    %%x3 = math.powf %%x, %%three : f64
    %%t1 = arith.mulf %%a1, %%x : f64
    %%t2 = arith.mulf %%a2, %%x2 : f64
    %%t3 = arith.mulf %%a3, %%x3 : f64
    %%s1 = arith.addf %%a0, %%t1 : f64
    %%s2 = arith.addf %%s1, %%t2 : f64
    %%s3 = arith.addf %%s2, %%t3 : f64
    %%upd = tensor.insert %%s3 into %%acc[%%i] : tensor<%[1]dxf64>
    scf.yield %%upd : tensor<%[1]dxf64>
  }
  func.return %%out : tensor<%[1]dxf64>
}
`, n)
}

// MatmulChainSource builds an N-matmul chain ((...(M0·M1)·M2)...·MN) in
// left-associated order. dims has N+2 entries: matrix i is
// dims[i] x dims[i+1].
func MatmulChainSource(name string, dims []int64) string {
	n := len(dims) - 2 // number of matmuls... n+1 matrices
	var b strings.Builder
	fmt.Fprintf(&b, "func.func @%s(", name)
	for i := 0; i <= n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%%M%d: tensor<%dx%dxf64>", i, dims[i], dims[i+1])
	}
	fmt.Fprintf(&b, ") -> tensor<%dx%dxf64> {\n", dims[0], dims[len(dims)-1])
	cur := "%M0"
	curRows := dims[0]
	for i := 1; i <= n; i++ {
		cols := dims[i+1]
		fmt.Fprintf(&b, "  %%e%d = tensor.empty() : tensor<%dx%dxf64>\n", i, curRows, cols)
		fmt.Fprintf(&b, "  %%P%d = linalg.matmul ins(%s, %%M%d : tensor<%dx%dxf64>, tensor<%dx%dxf64>) outs(%%e%d : tensor<%dx%dxf64>) -> tensor<%dx%dxf64>\n",
			i, cur, i, curRows, dims[i], dims[i], cols, i, curRows, cols, curRows, cols)
		cur = fmt.Sprintf("%%P%d", i)
	}
	fmt.Fprintf(&b, "  func.return %s : tensor<%dx%dxf64>\n}\n", cur, dims[0], dims[len(dims)-1])
	return b.String()
}

// TwoMMDims are the paper's 2MM shapes: A=100x10, B=10x150, C=150x8.
var TwoMMDims = []int64{100, 10, 150, 8}

// ThreeMMDims are the paper's 3MM shapes: A=200x175, B=175x250, C=250x150,
// D=150x10. (The paper's table prints D as 250x10, which cannot compose
// with C's 150 columns; 150x10 is the composable reading.)
var ThreeMMDims = []int64{200, 175, 250, 150, 10}

// NMMDims generates a deterministic pseudo-varied dimension vector for an
// n-matmul scalability chain (Table 2's 10MM..80MM study), extending the
// 3MM shapes.
func NMMDims(n int) []int64 {
	base := []int64{200, 175, 250, 150, 10, 120, 60, 90, 40, 180}
	dims := make([]int64, n+2)
	for i := range dims {
		dims[i] = base[i%len(base)]
	}
	return dims
}
