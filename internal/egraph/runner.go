package egraph

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dialegg/internal/obs"
	"dialegg/internal/obs/journal"
	"dialegg/internal/sched"
)

// RunConfig bounds a saturation run. Zero fields get defaults.
type RunConfig struct {
	// Ctx, when non-nil, makes the run cancelable: the iteration loop
	// checks it alongside NodeLimit/TimeLimit, and the match phase
	// abandons queued tasks once it is done, so a run stops within one
	// match task of cancellation rather than at the next wall-clock
	// check. A canceled run reports StopCanceled; the e-graph is left
	// clean (canceled runs stop at an iteration boundary or skip the
	// apply phase entirely, never mid-apply). A nil Ctx means the run
	// cannot be canceled (context.Background semantics).
	Ctx context.Context
	// IterLimit caps saturation iterations (default 30).
	IterLimit int
	// NodeLimit stops the run when the e-graph exceeds this many e-nodes
	// (default 100_000).
	NodeLimit int
	// MatchLimit caps matches collected per rule per iteration
	// (default 500_000).
	MatchLimit int
	// TimeLimit stops the run after this wall-clock duration
	// (default 30s).
	TimeLimit time.Duration
	// Workers bounds the match-phase worker pool (default GOMAXPROCS;
	// 1 runs the match phase serially). The applied rewrites are
	// identical for every worker count: matches are merged back in
	// rule-declaration order before the serial apply phase.
	Workers int
	// MatchShards caps how many shards a rule's top-level scan is split
	// into (default Workers). Sharding finer than the worker count
	// improves load balance; the merged match order is unchanged by
	// either knob.
	MatchShards int
	// RecordTaskTimes populates IterStats.TaskTimes and TaskRows with
	// each match task's duration and row count, making the match phase's
	// parallelism observable (per-shard work and its balance across
	// workers).
	RecordTaskTimes bool
	// RuleMetrics enables per-rule accounting (RunReport.Rules) and the
	// expensive per-iteration gauges (Classes, LiveRows/DeadRows, Finds).
	// Off — the default — none of these are computed, keeping the
	// saturation loop's per-iteration cost flat.
	RuleMetrics bool
	// Recorder, when non-nil, receives structured trace spans: one per
	// iteration and per phase on the engine lane, and one per match task
	// on its worker's lane. The spans render as Chrome trace-event JSON
	// via the recorder's WriteTrace. A nil Recorder records nothing and
	// costs nothing.
	Recorder *obs.Recorder
	// RequestID is the correlation key of the serving-layer request this
	// run executes for. It changes no engine behavior; it is stamped on
	// every journal event the run emits and attached as a trace-level
	// label on the Recorder, so one request's journal, trace, and log
	// lines all join on the same ID. Empty means no request context.
	RequestID string
	// Live, when non-nil, receives per-iteration engine gauges (graph
	// growth, row census, per-rule match/apply counts) while the run is
	// in progress — the feed the serving layer exports as live Prometheus
	// gauges and the engine health watchdog watches for saturation
	// explosions. Unlike RuleMetrics it does not enable the union-find
	// Find counter or per-match no-op accounting, so its per-iteration
	// cost is one class count plus one row census. A nil Live costs one
	// pointer check per iteration and changes nothing.
	Live LiveSink
	// SnapshotEvery, when > 0 and the graph has a journal attached, embeds
	// a full state snapshot (EGraph.Snapshot) into the journal after every
	// N-th iteration's rebuild. Snapshots are what `egg-debug replay
	// -verify` byte-compares against and what the snapshot differ consumes.
	SnapshotEvery int
	// ProfileSample, when > 0, enables sampled premise-selectivity
	// collection (RunReport.Selectivity): every N-th top-level row of each
	// rule's match scan opens a traced sub-tree in which per-premise
	// execution/visit/match and access-path counters are recorded. 1
	// traces every top-level row (full profiling); 0 — the default —
	// collects nothing and costs one pointer check per premise entry.
	// Sampling is keyed to global row indices, never to shard boundaries,
	// so the counters are byte-identical for every Workers/MatchShards
	// setting; like the other observability knobs it changes no engine
	// behavior and is excluded from result cache keys.
	ProfileSample int
	// Scheduler, when non-nil, throttles rules adaptively: before each
	// match phase the runner asks the strategy for every rule's budget
	// (run, skip, or a per-iteration match cap) and reports the merged
	// per-rule outcome back after the iteration. Decisions are computed in
	// the runner's serial section from merged, worker-count-independent
	// statistics, so a scheduled run is byte-identical for every
	// Workers/MatchShards setting and in both match modes. A skipped rule
	// contributes no match tasks; a capped rule keeps the deterministic
	// prefix of its merged match list (the cap is enforced after merging,
	// never per task). Because skips and caps drop delta matches that
	// semi-naive mode would otherwise never revisit, the runner re-matches
	// such a rule against the full database the next time it runs.
	// Scheduler-imposed truncation does not stop the run (unlike
	// MatchLimit), and saturation is only declared on a no-growth
	// iteration whose skips are all final — a temporarily banned rule
	// keeps the run alive until its ban expires, exactly like egg's
	// BackoffScheduler. Nil (or sched.Simple) behaves bit-identically to
	// the unscheduled engine. A scheduler changes results, so it is part
	// of the memo cache key (via Fingerprint), unlike the observability
	// knobs.
	Scheduler sched.Scheduler
	// Naive disables semi-naive delta matching, re-matching every rule
	// against the entire database each iteration. Semi-naive mode (the
	// default) matches only against rows inserted or re-canonicalized
	// since the previous iteration from iteration 2 onward; it applies
	// exactly the matches that are new, in the same relative order, so
	// the resulting e-graph is identical. Two caveats: MergeOverwrite
	// tables, whose last-writer-wins outputs can depend on naive mode's
	// redundant re-applications, and runs stopped by MatchLimit, where
	// each mode truncates a different prefix of the per-rule match list
	// (naive counts already-seen matches toward the cap). Within either
	// mode, results stay identical for every worker count.
	Naive bool
}

// WithDefaults returns the config with every zero field replaced by its
// engine default. Exported so layers that key on a config (the memo
// cache) hash the values the engine will actually run with, making
// explicit-default and zero-field configs cache-equivalent.
func (c RunConfig) WithDefaults() RunConfig { return c.withDefaults() }

func (c RunConfig) withDefaults() RunConfig {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.IterLimit == 0 {
		c.IterLimit = 30
	}
	if c.NodeLimit == 0 {
		c.NodeLimit = 100_000
	}
	if c.MatchLimit == 0 {
		c.MatchLimit = 500_000
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MatchShards <= 0 {
		c.MatchShards = c.Workers
	}
	return c
}

// StopReason explains why a saturation run ended.
type StopReason string

// Stop reasons.
const (
	StopSaturated  StopReason = "saturated"
	StopIterLimit  StopReason = "iteration limit"
	StopNodeLimit  StopReason = "node limit"
	StopTimeLimit  StopReason = "time limit"
	StopRuleError  StopReason = "rule error"
	StopMatchLimit StopReason = "match limit"
	StopCanceled   StopReason = "canceled"
)

// RunReport summarizes a saturation run. Duration fields marshal as
// nanoseconds (Go's time.Duration JSON encoding); the `_ns` name suffix
// records that in the stats-JSON schema.
type RunReport struct {
	Iterations int           `json:"iterations"`
	Stop       StopReason    `json:"stop"`
	Nodes      int           `json:"nodes"`
	Classes    int           `json:"classes"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	// Workers is the match-phase worker count the run used.
	Workers int `json:"workers"`
	// MatchTime, ApplyTime, and RebuildTime total the three phases across
	// all iterations (MatchTime is wall time of the parallel phase, not
	// the sum over workers).
	MatchTime   time.Duration `json:"match_ns"`
	ApplyTime   time.Duration `json:"apply_ns"`
	RebuildTime time.Duration `json:"rebuild_ns"`
	// RowsScanned totals the match phase's row visits (scan loop
	// iterations plus direct lookups) across all iterations — the
	// quantity semi-naive matching shrinks.
	RowsScanned int64 `json:"rows_scanned"`
	// PerIter records per-iteration statistics for scalability studies.
	PerIter []IterStats `json:"per_iter,omitempty"`
	// Rules holds per-rule metrics in rule-declaration order when
	// RunConfig.RuleMetrics was set.
	Rules []RuleStats `json:"rules,omitempty"`
	// Selectivity holds per-rule sampled premise statistics in
	// rule-declaration order when RunConfig.ProfileSample was set.
	Selectivity []RuleSelectivity `json:"selectivity,omitempty"`
	// Err holds the first rule error, if Stop == StopRuleError.
	Err error `json:"-"`
}

// IterStats records one saturation iteration.
type IterStats struct {
	// Matches is the number of matches applied this iteration.
	Matches int `json:"matches"`
	// Nodes is the e-node count after the iteration's rebuild.
	Nodes int `json:"nodes"`
	// Classes is the e-class count after the rebuild. Computing it walks
	// every constructor row, so it is only populated (non-zero) when
	// RunConfig.RuleMetrics is set.
	Classes int `json:"classes,omitempty"`
	// Unions counts effective unions performed by applies and rebuild;
	// RebuildUnions is the rebuild-only share (congruence repairs).
	Unions        uint64 `json:"unions"`
	RebuildUnions uint64 `json:"rebuild_unions"`
	// MatchTime, ApplyTime, RebuildTime split the iteration's phases.
	MatchTime   time.Duration `json:"match_ns"`
	ApplyTime   time.Duration `json:"apply_ns"`
	RebuildTime time.Duration `json:"rebuild_ns"`
	// RebuildPasses is how many passes Rebuild needed to restore
	// congruence (repair rounds).
	RebuildPasses int `json:"rebuild_passes"`
	// TaskTimes and TaskRows hold each match task's duration and row
	// visits in task-plan order (rule-major, shard-minor) when
	// RunConfig.RecordTaskTimes is set. sum(TaskRows) == RowsScanned.
	TaskTimes []time.Duration `json:"task_times_ns,omitempty"`
	TaskRows  []int64         `json:"task_rows,omitempty"`
	// RowsScanned counts the iteration's match-phase row visits (scan
	// loop iterations plus direct lookups) summed over all tasks.
	RowsScanned int64 `json:"rows_scanned"`
	// DeltaRows is the size of the iteration's delta frontier: the live
	// rows inserted or re-canonicalized during the previous iteration,
	// which is all semi-naive matching scans at the top level.
	DeltaRows int `json:"delta_rows"`
	// SemiNaive reports whether this iteration matched delta-restricted
	// sub-queries (false for naive mode and for every run's first
	// iteration, which must match the full database).
	SemiNaive bool `json:"semi_naive"`
	// LiveRows and DeadRows census the database tables after the
	// iteration's rebuild (dead rows await compaction). Populated only
	// when RunConfig.RuleMetrics is set.
	LiveRows int `json:"live_rows,omitempty"`
	DeadRows int `json:"dead_rows,omitempty"`
	// Finds counts union-find Find calls during the iteration (match
	// canonicalization plus rebuild repair). Populated only when
	// RunConfig.RuleMetrics is set.
	Finds uint64 `json:"finds,omitempty"`
	// Sched records the scheduler's effective interventions this
	// iteration: one entry per skipped rule and per rule whose matches a
	// scheduler cap actually truncated. Uncapped runs and caps that never
	// bound are not recorded (they are the common case and carry no
	// information). Empty without a scheduler.
	Sched []SchedDecision `json:"sched,omitempty"`
}

// SchedDecision is one scheduler intervention in one iteration, as
// surfaced in IterStats: which rule, what happened ("skip" or "limit"),
// and what it cost.
type SchedDecision struct {
	Rule string `json:"rule"`
	// Action is "skip" or "limit".
	Action string `json:"action"`
	// Limit is the match cap for "limit" entries.
	Limit int `json:"limit,omitempty"`
	// Dropped counts matches discarded by the cap (found minus applied).
	Dropped int64 `json:"dropped,omitempty"`
	// Final marks a permanent skip (the strategy will never run the rule
	// again), which is what lets the runner still declare saturation.
	Final bool `json:"final,omitempty"`
}

// Saturated reports whether the run reached a fixed point.
func (r RunReport) Saturated() bool { return r.Stop == StopSaturated }

// LiveIterStats is one iteration's live gauge payload, delivered to
// RunConfig.Live right after the iteration's rebuild — while the run is
// still going, which is what makes saturation explosions observable
// before the final RunReport exists.
type LiveIterStats struct {
	// Iter is the 1-based iteration number within this run.
	Iter int
	// Nodes and Classes size the e-graph after the iteration's rebuild.
	Nodes   int
	Classes int
	// LiveRows and DeadRows census the database tables; DeltaRows is the
	// iteration's semi-naive frontier size.
	LiveRows  int
	DeadRows  int
	DeltaRows int
	// Matches is the number of matches applied this iteration.
	Matches int
}

// LiveRuleStats is one rule's match activity in one iteration (deltas,
// not run totals — sinks that export monotonic counters just add them).
type LiveRuleStats struct {
	Name string
	// Matched is the rule's pre-truncation match count this iteration;
	// Applied the post-truncation count actually applied.
	Matched int64
	Applied int64
	// Throttled reports that the scheduler skipped the rule this
	// iteration; Limited that a scheduler cap truncated its matches. Both
	// false without a scheduler.
	Throttled bool
	Limited   bool
}

// LiveSink receives live per-iteration gauges during a saturation run.
// LiveIter is called from the runner's serial section after each
// iteration's rebuild; rules is valid only for the duration of the call
// (the runner reuses the buffer). Implementations must not call back
// into the e-graph.
type LiveSink interface {
	LiveIter(st LiveIterStats, rules []LiveRuleStats)
}

// ruleMatches holds one rule's merged match buffer for the apply phase.
type ruleMatches struct {
	rule      *Rule
	matches   [][]Value
	truncated bool
	// schedTruncated reports that a scheduler cap (not the engine
	// MatchLimit) truncated the merged list. Unlike truncated it does not
	// stop the run.
	schedTruncated bool
	// found is the rule's pre-truncation match count this iteration.
	found int64
}

// schedSkip reports whether the iteration's scheduler decisions exclude
// rule ri from the match plan (nil decisions mean every rule runs).
func schedSkip(decisions []sched.Decision, ri int) bool {
	return decisions != nil && decisions[ri].Action == sched.ActionSkip
}

// matchTask is one unit of match-phase work: one shard of one sub-query
// of one rule. sub < 0 is the full (naive) query sharded over the leading
// premise's table scan; sub >= 0 is the semi-naive sub-query with table
// ordinal `sub` delta-restricted, sharded over that table's frontier.
// Shards partition the scan into contiguous ascending ranges, so
// concatenating a sub-query's shard buffers in shard order yields its
// serial match sequence.
type matchTask struct {
	ruleIdx int
	sub     int
	lo, hi  int
	buf     [][]Value
	keys    [][]int32
	scanned int64
	err     error
	// sel holds the task's sampled selectivity counters when
	// RunConfig.ProfileSample is set; task-private until the phase
	// barrier, folded serially afterwards (summation is commutative, so
	// the aggregate is independent of worker scheduling).
	sel *selSink
	// began/took/worker time the task and name its worker's trace lane.
	// They live here — goroutine-private until the phase barrier — so
	// observability adds no shared-state traffic to the hot path; the
	// runner reads them serially after the pool drains.
	began  time.Time
	took   time.Duration
	worker int
}

// shardMinRows is the smallest top-level scan worth splitting across
// workers; below it the coordination overhead dominates.
const shardMinRows = 64

// shardRange appends tasks covering [0, n) in at most maxShards
// contiguous pieces (one whole-range task when n is small). worth is the
// useful-row count the split is judged on — live rows rather than the
// raw scan length, so a table dominated by tombstones is not over-split.
func shardRange(tasks []matchTask, ruleIdx, sub, n, worth, maxShards int) []matchTask {
	shards := 1
	if maxShards > 1 && worth >= shardMinRows {
		shards = maxShards
		if shards > n {
			shards = n
		}
	}
	if shards <= 1 {
		return append(tasks, matchTask{ruleIdx: ruleIdx, sub: sub, lo: 0, hi: -1})
	}
	for s := 0; s < shards; s++ {
		lo := n * s / shards
		hi := n * (s + 1) / shards
		tasks = append(tasks, matchTask{ruleIdx: ruleIdx, sub: sub, lo: lo, hi: hi})
	}
	return tasks
}

// planMatchTasks splits each rule's full query into at most `maxShards`
// shards of its top-level scan. Rules whose first premise does not scan
// (or scans few live rows) get a single whole-range task; rules the
// scheduler skipped get none.
func (g *EGraph) planMatchTasks(rules []*Rule, maxShards int, decisions []sched.Decision) []matchTask {
	tasks := make([]matchTask, 0, len(rules))
	for ri, r := range rules {
		if schedSkip(decisions, ri) {
			continue
		}
		n, live := g.firstPremiseScan(r)
		tasks = shardRange(tasks, ri, -1, n, live, maxShards)
	}
	return tasks
}

// planDeltaTasks emits the semi-naive plan: for each rule with k table
// premises, one sharded sub-query per ordinal whose table has a non-empty
// frontier. Rules whose premise tables all went untouched last iteration
// contribute no tasks at all — the saturated fringe of a run costs
// nothing, which is the point of semi-naive evaluation.
//
// The plan is hybrid: when a rule's summed frontiers are so large relative
// to its leading table scan that the k delta sub-queries would visit more
// rows than one full pass (each frontier row probes the other k-1
// premises, so the delta plan costs about Σ|frontier| × k), the rule falls
// back to its full query for this iteration. The re-found old matches it
// applies are guaranteed no-ops under the apply phase's frozen
// canonicalization, so the fallback changes which rows are visited but not
// a single bit of the result.
// Scheduling adds two cases: a skipped rule contributes no tasks, and a
// rule carrying full-scan debt (needFull — it was skipped or truncated
// since its last complete pass, so delta frontiers it never saw are gone)
// runs its full query regardless of the frontier state. Re-found old
// matches are no-ops, so the forced full pass restores completeness
// without changing a bit of the already-derived state.
func (g *EGraph) planDeltaTasks(rules []*Rule, maxShards int, decisions []sched.Decision, needFull []bool) []matchTask {
	var tasks []matchTask
	for ri, r := range rules {
		if schedSkip(decisions, ri) {
			continue
		}
		if needFull != nil && needFull[ri] {
			n, live := g.firstPremiseScan(r)
			tasks = shardRange(tasks, ri, -1, n, live, maxShards)
			continue
		}
		tp := tablePremises(r)
		outer := 0
		for _, pi := range tp {
			outer += len(r.Premises[pi].(*TablePremise).Fn.table.frontier)
		}
		if outer == 0 {
			continue
		}
		if n, live := g.firstPremiseScan(r); n > 0 && outer*len(tp) >= n+live {
			tasks = shardRange(tasks, ri, -1, n, live, maxShards)
			continue
		}
		for s, pi := range tp {
			fr := len(r.Premises[pi].(*TablePremise).Fn.table.frontier)
			if fr == 0 {
				continue
			}
			tasks = shardRange(tasks, ri, s, fr, fr, maxShards)
		}
	}
	return tasks
}

// keyLess is the lexicographic order on equal-length match keys; it is
// the serial full-match enumeration order.
func keyLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// collectMatches runs the match phase: every task e-matches against the
// frozen (rebuilt, canonical) graph on a pool of `workers` goroutines,
// each filling a private buffer. Buffers are then merged in
// rule-declaration order, truncated to matchLimit per rule, so the result
// is independent of worker count and scheduling. Within a rule, naive
// shards concatenate in shard order; semi-naive sub-query buffers are
// sorted by match key, which restores the exact relative order a naive
// match would enumerate those (new) matches in. Matching only reads the
// graph: pool interning, union-find path halving, and lazy index builds
// are internally synchronized.
//
// The returned tasks carry per-task timings, row counts, and worker ids
// when any consumer wants them (RecordTaskTimes, RuleMetrics, or an
// enabled Recorder); the runner aggregates them serially after the phase.
// Scheduler decisions and full-scan debt (both nil for unscheduled runs)
// shape the plan — skipped rules get no tasks, indebted rules full-scan —
// and scheduler caps truncate the merged per-rule lists. Caps are applied
// only after the deterministic merge (never to per-task buffers), so the
// kept prefix is the same for every worker count and shard plan.
func (g *EGraph) collectMatches(rules []*Rule, cfg RunConfig, delta bool, minStamp uint64, decisions []sched.Decision, needFull []bool) ([]ruleMatches, []matchTask, int64, error) {
	workers, matchLimit := cfg.Workers, cfg.MatchLimit
	var tasks []matchTask
	if delta {
		tasks = g.planDeltaTasks(rules, cfg.MatchShards, decisions, needFull)
	} else {
		tasks = g.planMatchTasks(rules, cfg.MatchShards, decisions)
	}
	timeTasks := cfg.RecordTaskTimes || cfg.RuleMetrics || cfg.Recorder.Enabled()

	runTask := func(worker, i int) {
		t := &tasks[i]
		t.worker = worker
		// A canceled run abandons queued tasks: the runner discards the
		// phase's matches anyway (it checks Ctx before applying), so
		// skipping bounds cancellation latency at one task, not one
		// iteration. Completed runs never skip — ctx errors are sticky —
		// so determinism for uncanceled runs is unaffected.
		if cfg.Ctx.Err() != nil {
			return
		}
		if timeTasks {
			t.began = time.Now()
		}
		r := rules[t.ruleIdx]
		spec := matchSpec{deltaOrd: t.sub, minStamp: minStamp}
		if cfg.ProfileSample > 0 {
			t.sel = newSelSink(r, cfg.ProfileSample)
			spec.sel = t.sel
		}
		t.scanned, t.err = g.matchShard(r, spec, t.lo, t.hi, func(binds []Value, key []int32) bool {
			t.buf = append(t.buf, binds)
			if t.sub >= 0 {
				t.keys = append(t.keys, append([]int32(nil), key...))
			}
			return len(t.buf) < matchLimit
		})
		if timeTasks {
			t.took = time.Since(t.began)
		}
	}

	if workers <= 1 {
		for i := range tasks {
			runTask(0, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range idx {
					runTask(w, i)
				}
			}(w)
		}
		for i := range tasks {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Merge: declaration order across rules; within a rule, shard-order
	// concatenation (naive) or key sort (semi-naive sub-queries, whose
	// keys are unique — each new match is generated by exactly one
	// sub-query, the one whose delta ordinal is its first delta premise).
	merged := make([]ruleMatches, len(rules))
	for i, r := range rules {
		merged[i].rule = r
	}
	var scanned int64
	keys := make([][][]int32, len(rules))
	for i := range tasks {
		t := &tasks[i]
		if t.err != nil {
			return nil, nil, 0, fmt.Errorf("matching rule %s: %w", rules[t.ruleIdx].Name, t.err)
		}
		scanned += t.scanned
		rm := &merged[t.ruleIdx]
		rm.found += int64(len(t.buf))
		if len(rm.matches) == 0 {
			rm.matches = t.buf
			keys[t.ruleIdx] = t.keys
		} else {
			rm.matches = append(rm.matches, t.buf...)
			keys[t.ruleIdx] = append(keys[t.ruleIdx], t.keys...)
		}
	}
	for i := range merged {
		rm := &merged[i]
		// Key-sort only the rules the delta plan ran as sub-queries; a
		// rule the hybrid planner fell back to full matching for has no
		// keys and is already in shard (= serial full-match) order.
		if delta && keys[i] != nil && len(rm.matches) > 1 {
			k := keys[i]
			ord := make([]int, len(rm.matches))
			for j := range ord {
				ord[j] = j
			}
			sort.Slice(ord, func(a, b int) bool { return keyLess(k[ord[a]], k[ord[b]]) })
			sorted := make([][]Value, len(rm.matches))
			for j, o := range ord {
				sorted[j] = rm.matches[o]
			}
			rm.matches = sorted
		}
		if len(rm.matches) >= matchLimit {
			rm.matches = rm.matches[:matchLimit]
			rm.truncated = true
		}
		// Scheduler cap: keep the deterministic prefix of the merged
		// list. Enforced after the engine MatchLimit so a run that would
		// have hit the engine cap unscheduled still stops with
		// StopMatchLimit; scheduler truncation itself never stops the run.
		if decisions != nil && decisions[i].Action == sched.ActionLimit {
			if lim := decisions[i].Limit; lim > 0 && len(rm.matches) > lim {
				rm.matches = rm.matches[:lim]
				rm.schedTruncated = true
			}
		}
	}
	return merged, tasks, scanned, nil
}

// rowCensus counts live and dead (tombstoned, awaiting compaction) rows
// across all tables. O(#functions); used by the RuleMetrics gauges.
func (g *EGraph) rowCensus() (live, dead int) {
	for _, f := range g.funcs {
		live += f.table.live
		dead += len(f.table.rows) - f.table.live
	}
	return live, dead
}

// Run saturates the e-graph under the given rules: each iteration
// e-matches all rules against the current graph across a worker pool,
// merges the match buffers deterministically, applies every match's
// actions serially, then rebuilds congruence. The run stops at a fixed
// point (no new unions and no new nodes) or when a limit is hit.
//
// From the second iteration on (unless cfg.Naive is set) the match phase
// is semi-naive: it runs delta-restricted sub-queries that enumerate
// exactly the matches involving at least one row changed by the previous
// iteration. Matches over unchanged rows were already applied and
// re-applying them is a no-op (unions of already-equal classes, inserts
// of existing rows, idempotent merges), so the e-graph evolves
// identically — only the redundant work is skipped. Every run's first
// iteration matches the full database: mutations between runs carry no
// frontier, so the full match re-establishes the baseline the deltas are
// relative to.
//
// Observability is additive and, when off, free: cfg.RuleMetrics turns on
// per-rule accounting (RunReport.Rules) plus the expensive per-iteration
// gauges, and cfg.Recorder collects trace spans. Neither changes which
// matches are found or applied.
func (g *EGraph) Run(rules []*Rule, cfg RunConfig) RunReport {
	cfg = cfg.withDefaults()
	start := time.Now()
	report := RunReport{Stop: StopIterLimit, Workers: cfg.Workers}
	rec := cfg.Recorder
	if cfg.RequestID != "" {
		// Correlate this run's artifacts: journal events are stamped with
		// the request ID for the run's duration, and the trace carries it
		// as a process-level label.
		if g.journal != nil {
			g.reqID = cfg.RequestID
			defer func() { g.reqID = "" }()
		}
		rec.SetLabel("request_id", cfg.RequestID)
	}
	if g.journal != nil {
		g.jEmit(journal.Event{Kind: journal.KRun, Workers: cfg.Workers})
	}
	var liveRules []LiveRuleStats

	var selAgg []RuleSelectivity
	if cfg.ProfileSample > 0 {
		selAgg = make([]RuleSelectivity, len(rules))
		for i, r := range rules {
			selAgg[i] = newRuleSelectivity(r, cfg.ProfileSample)
		}
	}
	// Scheduler state: one fresh Instance per run (strategies are
	// reusable; instances are not), the per-iteration decision vector, the
	// cumulative per-rule stats decisions key on, the RecordIter buffer,
	// and the full-scan debt ledger. All of it lives in the serial
	// section; the match workers only ever see the finished decisions.
	var schedInst sched.Instance
	var decisions []sched.Decision
	var schedTotals []sched.RuleStats
	var schedIter []sched.RuleIterStats
	var needFull []bool
	if cfg.Scheduler != nil {
		schedInst = cfg.Scheduler.New()
		decisions = make([]sched.Decision, len(rules))
		schedTotals = make([]sched.RuleStats, len(rules))
		schedIter = make([]sched.RuleIterStats, len(rules))
		needFull = make([]bool, len(rules))
	}
	var rstats []RuleStats
	if cfg.RuleMetrics {
		rstats = make([]RuleStats, len(rules))
		for i, r := range rules {
			rstats[i].Name = r.Name
		}
		// The Find counter is toggled here, in the serial prologue, so the
		// match phase's concurrent Finds all observe counting == true (the
		// worker goroutine spawns give the happens-before edge).
		g.uf.SetCounting(true)
		defer g.uf.SetCounting(false)
	}
	if rec.Enabled() {
		rec.SetLaneName(obs.LaneEngine, "engine")
		for w := 0; w < cfg.Workers; w++ {
			rec.SetLaneName(obs.LaneWorker+w, fmt.Sprintf("match worker %d", w))
		}
		defer func() {
			rec.Complete(obs.LaneEngine, "phase", "run", start, report.Elapsed, map[string]int64{
				"iterations": int64(report.Iterations),
				"nodes":      int64(report.Nodes),
				"rows":       report.RowsScanned,
			})
		}()
	}

	for iter := 0; iter < cfg.IterLimit; iter++ {
		if cfg.Ctx.Err() != nil {
			report.Stop = StopCanceled
			break
		}
		if time.Since(start) > cfg.TimeLimit {
			report.Stop = StopTimeLimit
			break
		}
		iterStart := time.Now()
		// The graph-lifetime iteration counter stamps row provenance and
		// union justifications; the journal's iter event marks the boundary
		// replay stops at for --to-iter.
		g.iterCur++
		if g.journal != nil {
			g.jEmit(journal.Event{Kind: journal.KIter})
		}
		// Matching relies on canonical rows (for safe concurrent reads and
		// the per-argument indexes); restore congruence if a caller left
		// the graph dirty. This is also what makes the match-phase reads a
		// consistent snapshot: no union or insert happens between here and
		// the end of the match phase.
		if !g.Clean() {
			g.Rebuild()
		}
		// Close the epoch: rows touched since the previous iteration's
		// match phase become the delta frontier this iteration scans.
		deltaRows, minStamp := g.advanceFrontier()
		useDelta := !cfg.Naive && iter > 0
		unionsBefore := g.unionCount
		rowsBefore := g.TotalRows()
		findsBefore := g.uf.Finds()
		var it IterStats
		it.DeltaRows = deltaRows
		it.SemiNaive = useDelta
		// Scheduler decisions for the iteration, computed serially from
		// merged stats before any worker starts — never from wall time or
		// goroutine order, which is the determinism contract.
		if schedInst != nil {
			for i, r := range rules {
				decisions[i] = schedInst.RuleBudget(r.Name, iter+1, schedTotals[i])
			}
		}

		// Phase 1: match all rules against the frozen view on the pool.
		startMatch := time.Now()
		pending, tasks, scanned, err := g.collectMatches(rules, cfg, useDelta, minStamp, decisions, needFull)
		it.MatchTime = time.Since(startMatch)
		it.RowsScanned = scanned
		report.RowsScanned += scanned
		report.MatchTime += it.MatchTime
		if cfg.RecordTaskTimes {
			it.TaskTimes = make([]time.Duration, len(tasks))
			it.TaskRows = make([]int64, len(tasks))
			for i := range tasks {
				it.TaskTimes[i] = tasks[i].took
				it.TaskRows[i] = tasks[i].scanned
			}
		}
		if cfg.ProfileSample > 0 {
			// Fold task sinks serially, in plan order. Summation is
			// commutative, so the aggregate depends only on which rows were
			// sampled — a function of global row indices, not of sharding.
			for i := range tasks {
				t := &tasks[i]
				if t.sel == nil {
					continue
				}
				agg := &selAgg[t.ruleIdx]
				agg.SampledRoots += t.sel.roots
				for j := range t.sel.prem {
					agg.Premises[j].add(t.sel.prem[j])
				}
			}
		}
		if cfg.RuleMetrics {
			for i := range tasks {
				t := &tasks[i]
				rs := &rstats[t.ruleIdx]
				rs.RowsScanned += t.scanned
				rs.MatchTime += t.took
				// Count each (rule, sub-query) plan once, on its first
				// shard: sub >= 0 is a delta-restricted sub-query, sub < 0
				// a full scan (naive iterations and hybrid fallbacks).
				if t.lo == 0 {
					if t.sub >= 0 {
						rs.DeltaQueries++
					} else {
						rs.FullScans++
					}
				}
			}
			for i := range pending {
				rstats[i].Matched += pending[i].found
			}
		}
		if rec.Enabled() {
			for i := range tasks {
				t := &tasks[i]
				rec.Complete(obs.LaneWorker+t.worker, "match", rules[t.ruleIdx].Name, t.began, t.took, map[string]int64{
					"rows":    t.scanned,
					"matches": int64(len(t.buf)),
					"sub":     int64(t.sub),
				})
			}
			rec.Complete(obs.LaneEngine, "phase", "match", startMatch, it.MatchTime, map[string]int64{
				"rows":  scanned,
				"tasks": int64(len(tasks)),
			})
		}
		if err != nil {
			report.Stop = StopRuleError
			report.Err = err
			report.PerIter = append(report.PerIter, it)
			report.Rules = rstats
			report.Selectivity = selAgg
			report.finish(g, start)
			return report
		}
		// A cancellation during the match phase may have skipped tasks, so
		// the merged buffers can be incomplete; applying them would make
		// the result depend on cancellation timing. Discard the phase and
		// stop — the graph is still clean (matching only reads).
		if cfg.Ctx.Err() != nil {
			report.Stop = StopCanceled
			report.PerIter = append(report.PerIter, it)
			break
		}
		truncated := false
		for _, rm := range pending {
			truncated = truncated || rm.truncated
		}

		// Phase 2: apply serially, in merged (deterministic) order, so
		// unions, inserts, and proof recording need no locking. The apply
		// runs under the frozen iteration-start canonicalization
		// (beginFrozenApply), so each match's effect depends only on the
		// snapshot it was collected against — re-applying an old match is
		// then a guaranteed no-op, which is what lets semi-naive mode skip
		// old matches without changing a single bit of the result.
		startApply := time.Now()
		applied := 0
		g.beginFrozenApply()
		for ri := range pending {
			rm := &pending[ri]
			if len(rm.matches) > 0 {
				// Provenance context: rows and unions made while applying
				// this batch are stamped with the rule (endFrozenApply
				// clears it on every exit from the phase).
				g.ruleCur = g.ruleID(rm.rule.Name)
				if g.journal != nil {
					g.jEmit(journal.Event{Kind: journal.KFire, Name: rm.rule.Name, Matches: len(rm.matches)})
				}
			}
			var ruleStart time.Time
			var ruleRowsBefore int
			var ruleUnionsBefore uint64
			if cfg.RuleMetrics && len(rm.matches) > 0 {
				ruleStart = time.Now()
				ruleRowsBefore = g.TotalRows()
				ruleUnionsBefore = g.unionCount
			}
			for _, binds := range rm.matches {
				// A match whose actions moved neither the union counter nor
				// the effect counter (new rows, merge changes, cost installs)
				// changed nothing — the per-rule no-op count is what makes
				// naive mode's redundant re-matching visible in --stats.
				var before uint64
				if cfg.RuleMetrics {
					before = g.unionCount + g.effects
				}
				if err := g.ApplyActions(rm.rule, binds); err != nil {
					g.endFrozenApply()
					report.Stop = StopRuleError
					report.Err = fmt.Errorf("applying rule %s: %w", rm.rule.Name, err)
					report.PerIter = append(report.PerIter, it)
					report.Rules = rstats
					report.Selectivity = selAgg
					report.finish(g, start)
					return report
				}
				applied++
				if cfg.RuleMetrics {
					rstats[ri].Applied++
					if g.unionCount+g.effects == before {
						rstats[ri].Noops++
					}
				}
			}
			if cfg.RuleMetrics && len(rm.matches) > 0 {
				rstats[ri].ApplyTime += time.Since(ruleStart)
				// Growth attribution: rows and unions the batch produced,
				// measured over the serial apply of this rule's matches —
				// the live-run counterpart of the journal's per-row
				// provenance. Rebuild's congruence unions are deliberately
				// excluded; they belong to no single rule.
				rstats[ri].RowsCreated += int64(g.TotalRows() - ruleRowsBefore)
				rstats[ri].UnionsMade += g.unionCount - ruleUnionsBefore
			}
		}
		g.endFrozenApply()
		it.ApplyTime = time.Since(startApply)
		report.ApplyTime += it.ApplyTime

		// Phase 3: restore congruence.
		startRebuild := time.Now()
		rebuildUnionsBefore := g.unionCount
		it.RebuildPasses = g.Rebuild()
		it.RebuildUnions = g.unionCount - rebuildUnionsBefore
		it.RebuildTime = time.Since(startRebuild)
		report.RebuildTime += it.RebuildTime
		// The graph is clean (just rebuilt), so the snapshot captures the
		// exact state replay reaches when it stops after this iteration.
		if g.journal != nil && cfg.SnapshotEvery > 0 && (iter+1)%cfg.SnapshotEvery == 0 {
			if b, err := json.Marshal(g.Snapshot(int(g.iterCur))); err == nil {
				g.jEmit(journal.Event{Kind: journal.KSnapshot, Snapshot: b})
			}
		}

		report.Iterations = iter + 1
		nodesAfter := g.NumNodes()
		it.Matches = applied
		it.Nodes = nodesAfter
		it.Unions = g.unionCount - unionsBefore
		if cfg.RuleMetrics {
			it.Classes = g.NumClasses()
			it.LiveRows, it.DeadRows = g.rowCensus()
			it.Finds = g.uf.Finds() - findsBefore
		}
		// Close the scheduler's loop: fold the iteration's merged per-rule
		// outcomes into the cumulative stats, surface interventions in
		// IterStats (and the per-rule counters when metrics are on), record
		// full-scan debt for skipped/truncated rules, and report the
		// iteration back to the strategy. schedActive marks a non-final
		// intervention — while one exists, a no-growth iteration must not
		// be read as saturation, because an expiring ban can still wake the
		// run up.
		schedActive := false
		if schedInst != nil {
			for i := range pending {
				rm := &pending[i]
				d := decisions[i]
				skipped := d.Action == sched.ActionSkip
				schedIter[i] = sched.RuleIterStats{
					Rule:    rules[i].Name,
					Matched: rm.found,
					Applied: int64(len(rm.matches)),
					Skipped: skipped,
					Limited: rm.schedTruncated,
				}
				schedTotals[i].Matched += rm.found
				schedTotals[i].Applied += int64(len(rm.matches))
				switch {
				case skipped:
					schedTotals[i].SkippedIters++
					if !d.Final {
						schedActive = true
					}
					it.Sched = append(it.Sched, SchedDecision{Rule: rules[i].Name, Action: "skip", Final: d.Final})
					if cfg.RuleMetrics {
						if d.Final {
							rstats[i].Banned++
						} else {
							rstats[i].Throttled++
						}
					}
				case rm.schedTruncated:
					dropped := rm.found - int64(len(rm.matches))
					schedActive = true
					it.Sched = append(it.Sched, SchedDecision{Rule: rules[i].Name, Action: "limit", Limit: d.Limit, Dropped: dropped})
					if cfg.RuleMetrics {
						rstats[i].MatchLimited++
						rstats[i].SchedDropped += dropped
					}
				}
				needFull[i] = skipped || rm.schedTruncated
			}
			schedInst.RecordIter(iter+1, schedIter)
		}
		report.PerIter = append(report.PerIter, it)
		if cfg.Live != nil {
			lst := LiveIterStats{
				Iter:      iter + 1,
				Nodes:     nodesAfter,
				DeltaRows: deltaRows,
				Matches:   applied,
			}
			if cfg.RuleMetrics {
				lst.Classes, lst.LiveRows, lst.DeadRows = it.Classes, it.LiveRows, it.DeadRows
			} else {
				lst.Classes = g.NumClasses()
				lst.LiveRows, lst.DeadRows = g.rowCensus()
			}
			liveRules = liveRules[:0]
			for i := range pending {
				rm := &pending[i]
				throttled := schedInst != nil && decisions[i].Action == sched.ActionSkip
				if rm.found == 0 && len(rm.matches) == 0 && !throttled {
					continue
				}
				liveRules = append(liveRules, LiveRuleStats{
					Name:      rm.rule.Name,
					Matched:   rm.found,
					Applied:   int64(len(rm.matches)),
					Throttled: throttled,
					Limited:   rm.schedTruncated,
				})
			}
			cfg.Live.LiveIter(lst, liveRules)
		}
		if rec.Enabled() {
			rec.Complete(obs.LaneEngine, "phase", "apply", startApply, it.ApplyTime, map[string]int64{
				"matches": int64(applied),
			})
			rec.Complete(obs.LaneEngine, "phase", "rebuild", startRebuild, it.RebuildTime, map[string]int64{
				"passes": int64(it.RebuildPasses),
				"unions": int64(it.RebuildUnions),
			})
			rec.Complete(obs.LaneEngine, "iter", fmt.Sprintf("iteration %d", iter+1), iterStart, time.Since(iterStart), map[string]int64{
				"matches":    int64(applied),
				"nodes":      int64(nodesAfter),
				"delta_rows": int64(deltaRows),
				"unions":     int64(it.Unions),
			})
		}

		if truncated {
			report.Stop = StopMatchLimit
			break
		}
		// Saturation needs an honest fixpoint: no growth AND no live
		// scheduler intervention. A no-growth iteration with a temporary
		// ban or a binding cap is a fixpoint of the throttled system only —
		// derivable facts remain, and an expiring ban can still produce
		// them — so the run keeps iterating (cheaply: saturated fringes
		// plan no tasks) until the scheduler goes quiet or a limit lands.
		// Final skips are exempt: a permanently banned rule never comes
		// back, so it cannot justify keeping the run alive.
		if g.unionCount == unionsBefore && g.TotalRows() == rowsBefore && !schedActive {
			report.Stop = StopSaturated
			break
		}
		if nodesAfter > cfg.NodeLimit {
			report.Stop = StopNodeLimit
			break
		}
	}
	report.Rules = rstats
	report.Selectivity = selAgg
	report.finish(g, start)
	return report
}

func (r *RunReport) finish(g *EGraph, start time.Time) {
	r.Nodes = g.NumNodes()
	r.Classes = g.NumClasses()
	r.Elapsed = time.Since(start)
	if g.journal != nil {
		g.jEmit(journal.Event{Kind: journal.KRunEnd, Name: string(r.Stop)})
	}
}
