package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"dialegg/internal/dialects"
	"dialegg/internal/dialegg"
	"dialegg/internal/egraph"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
	"dialegg/internal/sched"
)

// Bench2Mode is one matching mode's measurement of a benchmark's
// saturation run: the phase times, the total match-phase row visits, and
// the visits from the second iteration on (the first iteration is a full
// match in both modes, so the tail is where semi-naive matching differs).
// Throttled and Limited count scheduler interventions (rule-iterations
// skipped by a backoff ban / truncated by a cap); they are zero for the
// unscheduled modes and deterministic for the scheduled one.
type Bench2Mode struct {
	Iterations      int     `json:"iterations"`
	Matches         int     `json:"matches"`
	MatchMS         float64 `json:"match_ms"`
	ApplyMS         float64 `json:"apply_ms"`
	RebuildMS       float64 `json:"rebuild_ms"`
	RowsScanned     int64   `json:"rows_scanned"`
	RowsScannedTail int64   `json:"rows_scanned_tail"`
	Throttled       int64   `json:"throttled,omitempty"`
	Limited         int64   `json:"limited,omitempty"`
}

// Bench2SchedRef is the fixed reference strategy of the -bench2 scheduled
// column: not a tuned optimum (egg-tune owns those) but a stable probe
// whose deterministic intervention counts the perf-regression gate can
// pin across engine changes.
var Bench2SchedRef = sched.Backoff{Threshold: 128, Factor: 2, BanLength: 5}

// Bench2Row compares naive and semi-naive matching on one benchmark,
// plus a semi-naive run under the Bench2SchedRef backoff scheduler.
// ScanRatioTail is naive tail visits / semi-naive tail visits — the
// row-visit reduction semi-naive matching delivers after iteration 1.
// ScanRatioSched is unscheduled semi-naive visits / scheduled visits.
type Bench2Row struct {
	Benchmark      string     `json:"benchmark"`
	Naive          Bench2Mode `json:"naive"`
	SemiNaive      Bench2Mode `json:"semi_naive"`
	Sched          Bench2Mode `json:"sched"`
	ScanRatioTail  float64    `json:"scan_ratio_tail"`
	ScanRatioSched float64    `json:"scan_ratio_sched"`
}

// runBench2Mode saturates one benchmark end-to-end in the given mode and
// folds its run report into a Bench2Mode. Workers is pinned to 1 so the
// phase times measure the engine, not the pool.
func runBench2Mode(b *Benchmark, naive bool, scheduler sched.Scheduler) (Bench2Mode, error) {
	reg := dialects.NewRegistry()
	m, err := mlir.ParseModule(b.Source, reg)
	if err != nil {
		return Bench2Mode{}, fmt.Errorf("bench %s: parse: %w", b.Name, err)
	}
	cfg := b.RunConfig
	cfg.Scheduler = scheduler
	opt := dialegg.NewOptimizer(dialegg.Options{
		RuleSources: b.Rules,
		RunConfig:   cfg,
		Workers:     1,
		Naive:       naive,
	})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		return Bench2Mode{}, fmt.Errorf("bench %s: dialegg: %w", b.Name, err)
	}
	mode := Bench2Mode{
		Iterations:  rep.Run.Iterations,
		MatchMS:     float64(rep.Run.MatchTime.Microseconds()) / 1e3,
		ApplyMS:     float64(rep.Run.ApplyTime.Microseconds()) / 1e3,
		RebuildMS:   float64(rep.Run.RebuildTime.Microseconds()) / 1e3,
		RowsScanned: rep.Run.RowsScanned,
	}
	for i, it := range rep.Run.PerIter {
		mode.Matches += it.Matches
		if i >= 1 {
			mode.RowsScannedTail += it.RowsScanned
		}
		for _, d := range it.Sched {
			switch d.Action {
			case "skip":
				mode.Throttled++
			case "limit":
				mode.Limited++
			}
		}
	}
	return mode, nil
}

// Bench2Benchmarks is the -bench2 workload set: the paper's five
// benchmarks plus a 20-matmul NMM chain, whose saturation is big enough
// for the match-phase wall-clock difference to rise above timer noise.
func Bench2Benchmarks(scale Scale) []*Benchmark {
	benchs := DefaultBenchmarks(scale)
	return append(benchs, &Benchmark{
		Name:      "20MM",
		InputSize: "20-matmul chain",
		Source:    MatmulChainSource("mm20", NMMDims(20)),
		FuncName:  "mm20",
		Rules:     rules.MatmulChain(),
		RunConfig: egraph.RunConfig{
			NodeLimit:  2_000_000,
			MatchLimit: 2_000_000,
			TimeLimit:  240 * time.Second,
			IterLimit:  120,
		},
	})
}

// RunBench2 measures every benchmark once per matching mode, then once
// more under the reference backoff scheduler (semi-naive).
func RunBench2(benchs []*Benchmark) ([]Bench2Row, error) {
	var out []Bench2Row
	for _, b := range benchs {
		naive, err := runBench2Mode(b, true, nil)
		if err != nil {
			return out, err
		}
		semi, err := runBench2Mode(b, false, nil)
		if err != nil {
			return out, err
		}
		scheduled, err := runBench2Mode(b, false, Bench2SchedRef)
		if err != nil {
			return out, err
		}
		row := Bench2Row{Benchmark: b.Name, Naive: naive, SemiNaive: semi, Sched: scheduled}
		if semi.RowsScannedTail > 0 {
			row.ScanRatioTail = float64(naive.RowsScannedTail) / float64(semi.RowsScannedTail)
		}
		if scheduled.RowsScanned > 0 {
			row.ScanRatioSched = float64(semi.RowsScanned) / float64(scheduled.RowsScanned)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatBench2 renders the comparison as an aligned text table.
func FormatBench2(rows []Bench2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %9s %9s | %9s %9s | %7s | %9s %5s %5s | %7s\n",
		"benchmark", "iters", "naive", "semi", "naiveTail", "semiTail", "ratio", "sched", "thr", "cap", "ratio")
	fmt.Fprintf(&b, "%-10s %6s %9s %9s | %9s %9s | %7s | %9s %5s %5s | %7s\n",
		"", "", "rows", "rows", "rows", "rows", "", "rows", "", "", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %9d %9d | %9d %9d | %6.2fx | %9d %5d %5d | %6.2fx\n",
			r.Benchmark, r.SemiNaive.Iterations,
			r.Naive.RowsScanned, r.SemiNaive.RowsScanned,
			r.Naive.RowsScannedTail, r.SemiNaive.RowsScannedTail,
			r.ScanRatioTail,
			r.Sched.RowsScanned, r.Sched.Throttled, r.Sched.Limited,
			r.ScanRatioSched)
	}
	return b.String()
}

// WriteBench2JSON writes the comparison to path as indented JSON.
func WriteBench2JSON(path string, rows []Bench2Row) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
