package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// traceEvent is one object of the Chrome trace-event format. Timestamps
// and durations are microseconds (the format's unit); fractional values
// keep sub-microsecond spans visible. Args is untyped because metadata
// events carry string args while span events carry counters.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// metaEvent is a metadata record ("M" phase): it has no timestamp and its
// args are strings (process/thread names).
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

const tracePID = 1

// WriteTrace renders the recorded events as Chrome trace-event JSON in
// the object flavor ({"traceEvents": [...]}), loadable by chrome://tracing
// and Perfetto. Metadata events name the process and lanes; span events
// are emitted as complete ("X") events sorted by timestamp (ties broken
// longest-first so parents precede children), making `ts` monotonic
// non-decreasing in file order.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var f struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	f.DisplayTimeUnit = "ms"
	// Trace-level labels (the per-request recorder's request ID) ride on
	// the process metadata so every span in the file carries them.
	procArgs := map[string]string{"name": "dialegg"}
	for k, v := range r.Labels() {
		if k != "name" {
			procArgs[k] = v
		}
	}
	f.TraceEvents = append(f.TraceEvents, metaEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: procArgs,
	})
	lanes := r.LaneNames()
	laneIDs := make([]int, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Ints(laneIDs)
	for _, id := range laneIDs {
		f.TraceEvents = append(f.TraceEvents, metaEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: id,
			Args: map[string]string{"name": lanes[id]},
		})
	}
	for _, ev := range r.Events() {
		te := traceEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: "X",
			TS:  float64(ev.Start.Nanoseconds()) / 1e3,
			Dur: float64(ev.Dur.Nanoseconds()) / 1e3,
			PID: tracePID, TID: ev.Lane,
		}
		if len(ev.Args) > 0 {
			te.Args = ev.Args
		}
		f.TraceEvents = append(f.TraceEvents, te)
	}
	b, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteTraceFile writes the trace to path.
func (r *Recorder) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateTrace checks that data is a loadable trace-event file: valid
// JSON in the object flavor, every event carrying a name and a known
// phase, complete ("X") events with non-negative ts/dur and ts monotonic
// non-decreasing in file order, and duration ("B"/"E") events balanced
// per lane. It returns the number of span events validated.
func ValidateTrace(data []byte) (int, error) {
	var f struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			TID  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	spans := 0
	lastTS := -1.0
	depth := make(map[int]int) // B/E nesting per tid
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return spans, fmt.Errorf("trace: event %d: missing name", i)
		}
		switch ev.Ph {
		case "M":
			// Metadata: no timestamp requirements.
		case "X":
			if ev.TS == nil || *ev.TS < 0 {
				return spans, fmt.Errorf("trace: event %d (%s): X event needs ts >= 0", i, ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return spans, fmt.Errorf("trace: event %d (%s): X event needs dur >= 0", i, ev.Name)
			}
			if *ev.TS < lastTS {
				return spans, fmt.Errorf("trace: event %d (%s): ts %.3f not monotonic (prev %.3f)", i, ev.Name, *ev.TS, lastTS)
			}
			lastTS = *ev.TS
			spans++
		case "B":
			if ev.TS == nil || *ev.TS < 0 {
				return spans, fmt.Errorf("trace: event %d (%s): B event needs ts >= 0", i, ev.Name)
			}
			depth[ev.TID]++
			spans++
		case "E":
			depth[ev.TID]--
			if depth[ev.TID] < 0 {
				return spans, fmt.Errorf("trace: event %d (%s): E without matching B on tid %d", i, ev.Name, ev.TID)
			}
		default:
			return spans, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return spans, fmt.Errorf("trace: %d unbalanced B events on tid %d", d, tid)
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("trace: no span events")
	}
	return spans, nil
}

// ValidateTraceFile validates the trace at path.
func ValidateTraceFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return ValidateTrace(data)
}
