package egglog

import (
	"fmt"

	"dialegg/internal/egraph"
	"dialegg/internal/obs/journal"
	"dialegg/internal/sexp"
)

// Program is an egglog session: an e-graph plus the declarations, global
// let bindings, and rules accumulated by executed commands.
type Program struct {
	g     *egraph.EGraph
	prims *primRegistry

	// sortNames resolves surface sort names, including aliases declared
	// with (sort Name (Vec Elem)).
	sortNames map[string]*egraph.Sort

	// lets are global bindings introduced by (let name expr).
	lets map[string]egraph.Value

	// rules in declaration order; (run ...) saturates with all of them
	// (the default ruleset).
	rules []*egraph.Rule
	// rulesets holds rules filed under a named ruleset via :ruleset; they
	// only run through (run-schedule ...).
	rulesets map[string][]*egraph.Rule
	// rulesetOrder preserves declaration order of ruleset names.
	rulesetOrder []string
	// ruleCounter names anonymous rules deterministically.
	ruleCounter int

	// LastRun holds the report of the most recent (run ...).
	LastRun egraph.RunReport

	// RunDefaults bounds (run ...) commands; zero values use engine
	// defaults.
	RunDefaults egraph.RunConfig
}

// NewProgram returns an empty egglog session.
func NewProgram() *Program {
	g := egraph.New()
	p := &Program{
		g:         g,
		prims:     newPrimRegistry(),
		sortNames: make(map[string]*egraph.Sort),
		lets:      make(map[string]egraph.Value),
		rulesets:  make(map[string][]*egraph.Rule),
	}
	for _, s := range []*egraph.Sort{g.I64, g.F64, g.Str, g.Bool, g.Unit} {
		p.sortNames[s.Name] = s
	}
	return p
}

// Graph exposes the underlying e-graph (read-mostly; used by DialEgg and
// tests).
func (p *Program) Graph() *egraph.EGraph { return p.g }

// SetJournal attaches an event journal to the session's e-graph, opening a
// new graph segment labeled label. Attach before executing any commands so
// the segment captures every declaration and insertion. A nil writer is a
// no-op.
func (p *Program) SetJournal(w *journal.Writer, label string) { p.g.SetJournal(w, label) }

// Rules returns the compiled rules in declaration order.
func (p *Program) Rules() []*egraph.Rule { return p.rules }

// NumRules reports how many rewrite/rule commands have been registered.
func (p *Program) NumRules() int { return len(p.rules) }

// LookupLet returns a global let binding.
func (p *Program) LookupLet(name string) (egraph.Value, bool) {
	v, ok := p.lets[name]
	return v, ok
}

// sortByName resolves a surface sort name.
func (p *Program) sortByName(name string) (*egraph.Sort, error) {
	if s, ok := p.sortNames[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("egglog: unknown sort %q", name)
}

// resolveSortNode resolves a sort reference node: either a symbol naming a
// sort or (Vec Elem).
func (p *Program) resolveSortNode(n *sexp.Node) (*egraph.Sort, error) {
	switch {
	case n.Kind == sexp.KindSymbol:
		return p.sortByName(n.Sym)
	case n.Kind == sexp.KindList && n.Head() == "Vec" && len(n.List) == 2:
		elem, err := p.resolveSortNode(n.List[1])
		if err != nil {
			return nil, err
		}
		return p.g.VecSortOf(elem), nil
	default:
		return nil, fmt.Errorf("egglog: invalid sort reference %s", n)
	}
}

// declareSort handles (sort Name) and (sort Name (Vec Elem)).
func (p *Program) declareSort(args []*sexp.Node) error {
	if len(args) == 0 || args[0].Kind != sexp.KindSymbol {
		return fmt.Errorf("egglog: sort expects a name")
	}
	name := args[0].Sym
	switch len(args) {
	case 1:
		s, err := p.g.AddEqSort(name)
		if err != nil {
			return err
		}
		p.sortNames[name] = s
		return nil
	case 2:
		s, err := p.resolveSortNode(args[1])
		if err != nil {
			return err
		}
		if _, dup := p.sortNames[name]; dup {
			return fmt.Errorf("egglog: sort %q already declared", name)
		}
		p.sortNames[name] = s
		return nil
	default:
		return fmt.Errorf("egglog: sort takes 1 or 2 arguments, got %d", len(args))
	}
}

// declareFunction handles
//
//	(function Name (ParamSorts...) OutSort [:cost N] [:unextractable])
func (p *Program) declareFunction(args []*sexp.Node) error {
	if len(args) < 3 || args[0].Kind != sexp.KindSymbol || args[1].Kind != sexp.KindList {
		return fmt.Errorf("egglog: function expects (function name (params) out ...)")
	}
	name := args[0].Sym
	if p.prims.isPrim(name) {
		return fmt.Errorf("egglog: function %q shadows a primitive", name)
	}
	params := make([]*egraph.Sort, len(args[1].List))
	for i, pn := range args[1].List {
		s, err := p.resolveSortNode(pn)
		if err != nil {
			return err
		}
		params[i] = s
	}
	out, err := p.resolveSortNode(args[2])
	if err != nil {
		return err
	}
	f := &egraph.Function{Name: name, Params: params, Out: out}
	for i := 3; i < len(args); i++ {
		switch {
		case args[i].IsSymbol(":cost"):
			if i+1 >= len(args) || args[i+1].Kind != sexp.KindInt {
				return fmt.Errorf("egglog: :cost expects an integer")
			}
			f.Cost = args[i+1].Int
			i++
		case args[i].IsSymbol(":unextractable"):
			f.Unextractable = true
		case args[i].IsSymbol(":merge"):
			// Accept and approximate egglog's :merge expressions: the
			// common (min old new) / (max old new) forms map to the
			// corresponding engine merges; anything else overwrites.
			if i+1 >= len(args) {
				return fmt.Errorf("egglog: :merge expects an expression")
			}
			// MergeName mirrors the choice symbolically so journals can
			// reconstruct the merge function on replay.
			switch args[i+1].Head() {
			case "min":
				f.Merge, f.MergeName = egraph.MergeMinI64, "min"
			case "max":
				f.Merge, f.MergeName = egraph.MergeMaxI64, "max"
			default:
				f.Merge, f.MergeName = egraph.MergeOverwrite, "overwrite"
			}
			i++
		default:
			return fmt.Errorf("egglog: unknown function option %s", args[i])
		}
	}
	_, err = p.g.DeclareFunction(f)
	return err
}

// declareRelation handles (relation Name (ParamSorts...)).
func (p *Program) declareRelation(args []*sexp.Node) error {
	if len(args) != 2 || args[0].Kind != sexp.KindSymbol || args[1].Kind != sexp.KindList {
		return fmt.Errorf("egglog: relation expects (relation name (params))")
	}
	params := make([]*egraph.Sort, len(args[1].List))
	for i, pn := range args[1].List {
		s, err := p.resolveSortNode(pn)
		if err != nil {
			return err
		}
		params[i] = s
	}
	_, err := p.g.DeclareFunction(&egraph.Function{
		Name:   args[0].Sym,
		Params: params,
		Out:    p.g.Unit,
	})
	return err
}

// declareDatatype handles
//
//	(datatype Name (Variant Sorts... [:cost N])...)
//
// which is sugar for a sort plus one constructor function per variant.
func (p *Program) declareDatatype(args []*sexp.Node) error {
	if len(args) == 0 || args[0].Kind != sexp.KindSymbol {
		return fmt.Errorf("egglog: datatype expects a name")
	}
	name := args[0].Sym
	s, err := p.g.AddEqSort(name)
	if err != nil {
		return err
	}
	p.sortNames[name] = s
	for _, v := range args[1:] {
		if v.Kind != sexp.KindList || len(v.List) == 0 || v.List[0].Kind != sexp.KindSymbol {
			return fmt.Errorf("egglog: invalid datatype variant %s", v)
		}
		f := &egraph.Function{Name: v.List[0].Sym, Out: s}
		for i := 1; i < len(v.List); i++ {
			if v.List[i].IsSymbol(":cost") {
				if i+1 >= len(v.List) || v.List[i+1].Kind != sexp.KindInt {
					return fmt.Errorf("egglog: :cost expects an integer")
				}
				f.Cost = v.List[i+1].Int
				i++
				continue
			}
			ps, err := p.resolveSortNode(v.List[i])
			if err != nil {
				return err
			}
			f.Params = append(f.Params, ps)
		}
		if _, err := p.g.DeclareFunction(f); err != nil {
			return err
		}
	}
	return nil
}

// EvalExpr evaluates a ground expression (no pattern variables): literals,
// global let names, constructor applications, primitive applications, and
// vec-of. Constructor applications insert e-nodes.
func (p *Program) EvalExpr(n *sexp.Node) (egraph.Value, error) {
	switch n.Kind {
	case sexp.KindInt:
		return egraph.I64Value(p.g.I64, n.Int), nil
	case sexp.KindFloat:
		return egraph.F64Value(p.g.F64, n.Float), nil
	case sexp.KindString:
		return p.g.InternString(n.Str), nil
	case sexp.KindSymbol:
		switch n.Sym {
		case "true":
			return egraph.BoolValue(p.g.Bool, true), nil
		case "false":
			return egraph.BoolValue(p.g.Bool, false), nil
		}
		if v, ok := p.lets[n.Sym]; ok {
			return p.g.Find(v), nil
		}
		// A bare symbol naming a zero-argument function is accepted, which
		// mirrors how egglog treats nullary constructors.
		if f, ok := p.g.FunctionByName(n.Sym); ok && f.Arity() == 0 {
			return p.g.Insert(f)
		}
		return egraph.Value{}, fmt.Errorf("egglog: unbound name %q", n.Sym)
	case sexp.KindList:
		head := n.Head()
		if head == "" {
			return egraph.Value{}, fmt.Errorf("egglog: cannot evaluate %s", n)
		}
		if head == "vec-of" {
			return p.evalVecOf(n)
		}
		if f, ok := p.g.FunctionByName(head); ok {
			args := make([]egraph.Value, len(n.Args()))
			for i, a := range n.Args() {
				v, err := p.EvalExpr(a)
				if err != nil {
					return egraph.Value{}, err
				}
				args[i] = v
			}
			if !f.IsConstructor() && f.Out.Kind != egraph.KindUnit {
				if v, ok := p.g.Lookup(f, args...); ok {
					return v, nil
				}
				return egraph.Value{}, fmt.Errorf("egglog: %s has no value for these arguments", head)
			}
			return p.g.Insert(f, args...)
		}
		if p.prims.isPrim(head) {
			args := make([]egraph.Value, len(n.Args()))
			sorts := make([]*egraph.Sort, len(n.Args()))
			for i, a := range n.Args() {
				v, err := p.EvalExpr(a)
				if err != nil {
					return egraph.Value{}, err
				}
				args[i] = v
				sorts[i] = v.Sort
			}
			prim, _, err := p.prims.resolve(p.g, head, sorts)
			if err != nil {
				return egraph.Value{}, err
			}
			out, ok := prim.Apply(p.g, args)
			if !ok {
				return egraph.Value{}, fmt.Errorf("egglog: primitive %s failed on %s", head, n)
			}
			return out, nil
		}
		return egraph.Value{}, fmt.Errorf("egglog: unknown function or primitive %q", head)
	default:
		return egraph.Value{}, fmt.Errorf("egglog: cannot evaluate %s", n)
	}
}

func (p *Program) evalVecOf(n *sexp.Node) (egraph.Value, error) {
	elems := make([]egraph.Value, len(n.Args()))
	var elemSort *egraph.Sort
	for i, a := range n.Args() {
		v, err := p.EvalExpr(a)
		if err != nil {
			return egraph.Value{}, err
		}
		elems[i] = v
		if elemSort == nil {
			elemSort = v.Sort
		} else if elemSort != v.Sort {
			return egraph.Value{}, fmt.Errorf("egglog: vec-of with mixed sorts %s and %s", elemSort, v.Sort)
		}
	}
	if elemSort == nil {
		return egraph.Value{}, fmt.Errorf("egglog: empty vec-of needs a sort context; use a typed helper")
	}
	return p.g.InternVec(p.g.VecSortOf(elemSort), elems), nil
}

// EvalExprRaw resolves an expression to the original (uncanonicalized)
// identity of its e-node: global lets return their stored value, and
// constructor applications return the table row's recorded output. Proof
// production needs these original IDs (the proof forest is indexed by
// them); everything else wants EvalExpr's canonical values.
func (p *Program) EvalExprRaw(n *sexp.Node) (egraph.Value, error) {
	if n.Kind == sexp.KindSymbol {
		if v, ok := p.lets[n.Sym]; ok {
			return v, nil
		}
	}
	if n.Kind == sexp.KindList {
		if f, ok := p.g.FunctionByName(n.Head()); ok && f.IsConstructor() {
			args := make([]egraph.Value, len(n.Args()))
			for i, a := range n.Args() {
				v, err := p.EvalExpr(a)
				if err != nil {
					return egraph.Value{}, err
				}
				args[i] = v
			}
			if raw, ok := p.g.LookupRaw(f, args...); ok {
				return raw, nil
			}
		}
	}
	return p.EvalExpr(n)
}

// Let evaluates expr and binds it to name (overwriting any previous
// binding, as egglog shadows).
func (p *Program) Let(name string, expr *sexp.Node) (egraph.Value, error) {
	v, err := p.EvalExpr(expr)
	if err != nil {
		return egraph.Value{}, err
	}
	p.lets[name] = v
	return v, nil
}

// RunRules saturates the graph with every registered rule. cfg zero-fields
// fall back to RunDefaults, then engine defaults.
func (p *Program) RunRules(cfg egraph.RunConfig) egraph.RunReport {
	if cfg.Ctx == nil {
		cfg.Ctx = p.RunDefaults.Ctx
	}
	if cfg.IterLimit == 0 {
		cfg.IterLimit = p.RunDefaults.IterLimit
	}
	if cfg.NodeLimit == 0 {
		cfg.NodeLimit = p.RunDefaults.NodeLimit
	}
	if cfg.MatchLimit == 0 {
		cfg.MatchLimit = p.RunDefaults.MatchLimit
	}
	if cfg.TimeLimit == 0 {
		cfg.TimeLimit = p.RunDefaults.TimeLimit
	}
	if cfg.Workers == 0 {
		cfg.Workers = p.RunDefaults.Workers
	}
	if !cfg.Naive {
		cfg.Naive = p.RunDefaults.Naive
	}
	if !cfg.RuleMetrics {
		cfg.RuleMetrics = p.RunDefaults.RuleMetrics
	}
	if cfg.Recorder == nil {
		cfg.Recorder = p.RunDefaults.Recorder
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = p.RunDefaults.SnapshotEvery
	}
	if cfg.ProfileSample == 0 {
		cfg.ProfileSample = p.RunDefaults.ProfileSample
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = p.RunDefaults.Scheduler
	}
	p.LastRun = p.g.Run(p.rules, cfg)
	return p.LastRun
}

// ExtractExpr evaluates expr and extracts the cheapest equivalent term.
func (p *Program) ExtractExpr(expr *sexp.Node) (*sexp.Node, int64, error) {
	v, err := p.EvalExpr(expr)
	if err != nil {
		return nil, 0, err
	}
	return p.ExtractValue(v)
}

// ExtractVariants evaluates expr and returns up to n distinct terms of
// its class, cheapest first (the egglog `extract :variants` feature).
func (p *Program) ExtractVariants(expr *sexp.Node, n int) ([]egraph.Variant, error) {
	v, err := p.EvalExpr(expr)
	if err != nil {
		return nil, err
	}
	p.g.Rebuild()
	ex := egraph.NewExtractor(p.g)
	return ex.ExtractVariants(v, n)
}

// ExtractValue extracts the cheapest term for an engine value.
func (p *Program) ExtractValue(v egraph.Value) (*sexp.Node, int64, error) {
	p.g.Rebuild()
	ex := egraph.NewExtractor(p.g)
	return ex.Extract(v)
}

// Blame evaluates each expr to an extraction root and runs blame analysis
// over the set (see egraph.Extractor.Blame): every live constructor row is
// classified as extracted, rejected, or waste, aggregated per creating
// rule. The profiler's cost/benefit join uses this as the "benefit" side.
func (p *Program) Blame(exprs ...*sexp.Node) ([]egraph.BlameRow, error) {
	roots := make([]egraph.Value, 0, len(exprs))
	for _, e := range exprs {
		v, err := p.EvalExpr(e)
		if err != nil {
			return nil, err
		}
		roots = append(roots, v)
	}
	p.g.Rebuild()
	ex := egraph.NewExtractor(p.g)
	return ex.Blame(roots)
}

// ExtractionDecisions evaluates expr and explains the extraction decision
// for its class: per reachable class, the chosen node with its cost
// breakdown and provenance, plus up to topK rejected alternatives.
func (p *Program) ExtractionDecisions(expr *sexp.Node, topK int) (*egraph.ExtractionReport, error) {
	v, err := p.EvalExpr(expr)
	if err != nil {
		return nil, err
	}
	p.g.Rebuild()
	ex := egraph.NewExtractor(p.g)
	return ex.Report(v, topK)
}

// renderRows renders up to limit live rows of a function's table as
// "(f args...) -> out" strings, with arguments and eq-sort outputs shown
// as extracted terms where possible.
func (p *Program) renderRows(f *egraph.Function, limit int) ([]string, error) {
	g := p.g
	ex := egraph.NewExtractor(g)
	var rows []string
	var err error
	g.ForEachRow(f, func(args []egraph.Value, out egraph.Value) bool {
		if len(rows) >= limit {
			return false
		}
		var b []byte
		b = append(b, '(')
		b = append(b, f.Name...)
		for _, a := range args {
			term, _, terr := ex.Extract(a)
			if terr != nil {
				b = append(b, " ?"...)
				continue
			}
			b = append(b, ' ')
			b = append(b, term.String()...)
		}
		b = append(b, ')')
		if f.Out.Kind != egraph.KindUnit {
			b = append(b, " -> "...)
			term, _, terr := ex.Extract(out)
			if terr != nil {
				b = append(b, '?')
			} else {
				b = append(b, term.String()...)
			}
		}
		rows = append(rows, string(b))
		return true
	})
	return rows, err
}
