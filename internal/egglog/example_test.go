package egglog_test

import (
	"fmt"
	"log"

	"dialegg/internal/egglog"
)

// Example runs the paper's §2.3 program: declaring the expression language,
// the four rewrite rules, saturating (a*2)/2, and extracting `a`.
func Example() {
	p := egglog.NewProgram()
	results, err := p.ExecuteString(`
(sort Expr)
(function Num (i64) Expr :cost 1)
(function Var (String) Expr :cost 1)
(function Mul (Expr Expr) Expr :cost 2)
(function Div (Expr Expr) Expr :cost 2)
(function Shl (Expr Expr) Expr :cost 1)

(rewrite (Div ?x ?x) (Num 1))
(rewrite (Mul ?x (Num 1)) ?x)
(rewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))
(rewrite (Div (Mul ?x ?y) ?z) (Mul ?x (Div ?y ?z)))

(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(run 20)
(extract expr)
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Command == "extract" {
			fmt.Printf("%s (cost %d)\n", r.Term, r.Cost)
		}
	}
	// Output: (Var "a") (cost 1)
}

// ExampleProgram_ExtractVariants lists equivalent forms discovered by
// saturation, cheapest first.
func ExampleProgram_ExtractVariants() {
	p := egglog.NewProgram()
	if _, err := p.ExecuteString(`
(sort Expr)
(function Num (i64) Expr :cost 1)
(function Var (String) Expr :cost 1)
(function Mul (Expr Expr) Expr :cost 2)
(function Shl (Expr Expr) Expr :cost 1)
(rewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))
(let e (Mul (Var "a") (Num 2)))
(run 5)
`); err != nil {
		log.Fatal(err)
	}
	res, err := p.ExecuteString(`(extract e 2)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res[0].Variants {
		fmt.Printf("%s (cost %d)\n", v.Term, v.Cost)
	}
	// Output:
	// (Shl (Var "a") (Num 1)) (cost 3)
	// (Mul (Var "a") (Num 2)) (cost 4)
}
