// Package rules embeds the egglog rule files used by the paper's case
// studies and benchmarks. Each file contains the operation declarations,
// cost models, and rewrite rules for one use case; benchmark drivers
// concatenate the files they need (declarations must not repeat across
// concatenated files).
package rules

import _ "embed"

// ArithCore declares the integer arith-dialect operations with
// latency-calibrated costs.
//
//go:embed arith_core.egg
var ArithCore string

// ArithFloat declares the float arith-dialect operations (each with a
// fastmath attribute slot).
//
//go:embed arith_float.egg
var ArithFloat string

// ConstantFold is the §7.1 constant-folding case study.
//
//go:embed constant_fold.egg
var ConstantFold string

// DivPow2 is the §7.2 conditional rewrite: division by a power of two
// becomes a right shift.
//
//go:embed div_pow2.egg
var DivPow2 string

// DivPow2Sound is the semantics-preserving variant of DivPow2: it applies
// the LLVM-style bias correction so the rewrite is also correct for
// negative dividends. The paper's rule as written (DivPow2) floors instead
// of truncating on negatives — a discrepancy this repository's
// differential fuzzer surfaced (see EXPERIMENTS.md).
//
//go:embed div_pow2_sound.egg
var DivPow2Sound string

// FastInvSqrt is the §7.3 attribute-based rewrite: fastmath 1/sqrt(x)
// becomes a call to @fast_inv_sqrt.
//
//go:embed fast_inv_sqrt.egg
var FastInvSqrt string

// Matmul is the §7.4 type-based cost model and matmul associativity.
//
//go:embed matmul.egg
var Matmul string

// Horner is the §7.5 rule set from which Horner's method emerges.
//
//go:embed horner.egg
var Horner string

// ImgConv is the rule set for the image-conversion benchmark (integer
// ops + div-by-pow2).
func ImgConv() []string { return []string{ArithCore, DivPow2} }

// VecNorm is the rule set for the vector-normalization benchmark (float
// ops + fast inverse sqrt).
func VecNorm() []string { return []string{ArithCore, ArithFloat, FastInvSqrt} }

// Poly is the rule set for the polynomial benchmark (float ops + Horner).
func Poly() []string { return []string{ArithCore, ArithFloat, Horner} }

// MatmulChain is the rule set for the 2MM/3MM/NMM benchmarks.
func MatmulChain() []string { return []string{ArithCore, Matmul} }
