package egraph

import (
	"fmt"
	"strconv"
	"strings"

	"dialegg/internal/obs/journal"
)

// SetJournal attaches (or detaches, with nil) an event journal to the
// graph and begins a new graph segment named label. Every subsequent
// mutation — declarations, inserts, unions, rebuild congruences — is
// recorded with enough information for Replay to reconstruct the graph
// bit-identically.
//
// Attach the journal before inserting any rows: declarations made earlier
// are back-filled into the segment header, but existing rows and classes
// are not, and a replay of such a journal diverges. All emission happens
// in the engine's serial sections, so journaling adds nothing to the
// concurrent match phase.
func (g *EGraph) SetJournal(w *journal.Writer, label string) {
	g.journal = w
	if w == nil {
		return
	}
	w.Emit(journal.Event{Kind: journal.KGraph, Name: label, Explanations: g.proofs != nil})
	// Back-fill declarations that preceded attachment. Eq-sort order is
	// immaterial for replay (sorts are resolved by name), so sorted-by-name
	// keeps the segment header deterministic; function order is declaration
	// order, which replay must preserve (it fixes table iteration order).
	for _, s := range g.Sorts() {
		if s.Kind == KindEq {
			w.Emit(journal.Event{Kind: journal.KSort, Name: s.Name})
		}
	}
	for _, f := range g.funcs {
		w.Emit(g.fnEvent(f))
	}
}

// Journal returns the attached journal writer (nil when journaling is off).
func (g *EGraph) Journal() *journal.Writer { return g.journal }

// jEmit stamps the ambient context — iteration counter, applying rule,
// rebuild flag — onto e and appends it. Callers guard with g.journal != nil
// before building the event, so disabled journaling costs one nil check.
func (g *EGraph) jEmit(e journal.Event) {
	if g.journal == nil {
		return
	}
	e.Iter = int(g.iterCur)
	e.Rebuild = g.inRebuild
	e.Req = g.reqID
	if e.Rule == "" {
		e.Rule = g.ruleName(g.ruleCur)
	}
	g.journal.Emit(e)
}

// fnEvent encodes a function declaration.
func (g *EGraph) fnEvent(f *Function) journal.Event {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Name
	}
	return journal.Event{
		Kind:          journal.KFn,
		Fn:            f.Name,
		Params:        params,
		OutSort:       f.Out.Name,
		FnCost:        f.Cost,
		Merge:         f.MergeName,
		Unextractable: f.Unextractable,
	}
}

// encodeVal renders a value self-describingly: strings and vectors by
// content (intern-pool numbering is process-local), everything else by its
// raw 64-bit payload in decimal (eq-sort class IDs are replay-stable —
// they are allocated densely and every allocation is journaled).
func (g *EGraph) encodeVal(v Value) journal.Val {
	jv := journal.Val{Sort: v.Sort.Name}
	switch v.Sort.Kind {
	case KindString:
		s := g.StringOf(v)
		jv.Str = &s
	case KindVec:
		elems := g.VecElems(v)
		jv.Elems = make([]journal.Val, len(elems))
		for i, e := range elems {
			jv.Elems[i] = g.encodeVal(e)
		}
	case KindUnit:
		// No payload.
	default:
		jv.Bits = strconv.FormatUint(v.Bits, 10)
	}
	return jv
}

func (g *EGraph) encodeVals(vs []Value) []journal.Val {
	out := make([]journal.Val, len(vs))
	for i, v := range vs {
		out[i] = g.encodeVal(v)
	}
	return out
}

// sortForName resolves a journal sort name, declaring vector sorts on
// demand (they are declared lazily by VecSortOf in the original run too).
func (g *EGraph) sortForName(name string) (*Sort, error) {
	if s, ok := g.sorts[name]; ok {
		return s, nil
	}
	if inner, ok := strings.CutPrefix(name, "Vec<"); ok && strings.HasSuffix(inner, ">") {
		elem, err := g.sortForName(strings.TrimSuffix(inner, ">"))
		if err != nil {
			return nil, err
		}
		return g.VecSortOf(elem), nil
	}
	return nil, fmt.Errorf("egraph: journal names undeclared sort %q", name)
}

// decodeVal reconstructs a journaled value in this graph. The decoded
// value is used verbatim — never re-canonicalized — because the journal
// records the exact (possibly frozen-apply) canonical form the original
// run stored, and replay must store the same bits.
func (g *EGraph) decodeVal(jv journal.Val) (Value, error) {
	s, err := g.sortForName(jv.Sort)
	if err != nil {
		return Value{}, err
	}
	switch s.Kind {
	case KindString:
		if jv.Str == nil {
			return Value{}, fmt.Errorf("egraph: journal String value without payload")
		}
		return g.InternString(*jv.Str), nil
	case KindVec:
		elems := make([]Value, len(jv.Elems))
		for i, je := range jv.Elems {
			if elems[i], err = g.decodeVal(je); err != nil {
				return Value{}, err
			}
		}
		// Raw intern: elements carry the recorded canonical bits already.
		return Value{Sort: s, Bits: uint64(g.vecs.intern(elems))}, nil
	case KindUnit:
		return Value{Sort: s}, nil
	default:
		bits, err := strconv.ParseUint(jv.Bits, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("egraph: journal value payload: %w", err)
		}
		return Value{Sort: s, Bits: bits}, nil
	}
}

func (g *EGraph) decodeVals(jvs []journal.Val) ([]Value, error) {
	out := make([]Value, len(jvs))
	for i, jv := range jvs {
		var err error
		if out[i], err = g.decodeVal(jv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// encodeJust encodes a union justification for the journal.
func (g *EGraph) encodeJust(j Justification) *journal.Just {
	out := &journal.Just{Kind: j.Kind, Rule: j.Rule}
	if j.Fn != nil {
		out.Fn = j.Fn.Name
	}
	if len(j.ArgsA) > 0 {
		out.ArgsA = g.encodeVals(j.ArgsA)
	}
	if len(j.ArgsB) > 0 {
		out.ArgsB = g.encodeVals(j.ArgsB)
	}
	return out
}

// decodeJust reconstructs a journaled justification.
func (g *EGraph) decodeJust(j *journal.Just, iter int) (Justification, error) {
	if j == nil {
		return Justification{Kind: "explicit", Iter: iter}, nil
	}
	out := Justification{Kind: j.Kind, Rule: j.Rule, Iter: iter}
	if j.Fn != "" {
		f, ok := g.funcsBy[j.Fn]
		if !ok {
			return Justification{}, fmt.Errorf("egraph: journal justification names undeclared function %q", j.Fn)
		}
		out.Fn = f
	}
	var err error
	if out.ArgsA, err = g.decodeVals(j.ArgsA); err != nil {
		return Justification{}, err
	}
	if out.ArgsB, err = g.decodeVals(j.ArgsB); err != nil {
		return Justification{}, err
	}
	return out, nil
}

// mergeFnByName maps a journaled merge name back to its function. Names
// are recorded from Function.MergeName (set by the egglog front end);
// graphs built directly against this package should set MergeName on
// functions with a non-default merge if their journals are to be replayed
// through rebuild-time primitive collisions.
func mergeFnByName(name string) (MergeFn, error) {
	switch name {
	case "", "must-equal":
		return MergeMustEqual, nil
	case "min":
		return MergeMinI64, nil
	case "max":
		return MergeMaxI64, nil
	case "overwrite":
		return MergeOverwrite, nil
	default:
		return nil, fmt.Errorf("egraph: journal names unknown merge %q", name)
	}
}

// ruleID interns a rule name for compact per-row provenance stamps. ID 0
// is reserved for "no rule" (rows created outside rule application).
func (g *EGraph) ruleID(name string) uint32 {
	if name == "" {
		return 0
	}
	if g.ruleIDs == nil {
		g.ruleIDs = make(map[string]uint32)
		g.provRules = []string{""}
	}
	if id, ok := g.ruleIDs[name]; ok {
		return id
	}
	id := uint32(len(g.provRules))
	g.provRules = append(g.provRules, name)
	g.ruleIDs[name] = id
	return id
}

// ruleName resolves a provenance rule ID ("" for 0 / unknown).
func (g *EGraph) ruleName(id uint32) string {
	if id == 0 || int(id) >= len(g.provRules) {
		return ""
	}
	return g.provRules[id]
}

// stampProvenance marks the newest row of f's table with the ambient
// creating rule and iteration. Provenance is unconditional (two uint32s
// per row): it costs nothing measurable and makes "introduced by rule X at
// iteration N" available to Explain, DOT, snapshots, and the extraction
// report without re-running under a debug flag.
func (g *EGraph) stampProvenance(f *Function) {
	r := &f.table.rows[len(f.table.rows)-1]
	r.provRule = g.ruleCur
	r.provIter = g.iterCur
}

// RowProvenance reports which rule created row ri of f's table and at
// which saturation iteration. rule is "" (and iter 0) for rows created
// outside rule application — initial program terms, explicit inserts.
func (g *EGraph) RowProvenance(f *Function, ri int) (rule string, iter int) {
	r := &f.table.rows[ri]
	return g.ruleName(r.provRule), int(r.provIter)
}

// provenanceNote renders a row's provenance for labels and reports, or ""
// when the row predates rule application.
func (g *EGraph) provenanceNote(f *Function, ri int) string {
	rule, iter := g.RowProvenance(f, ri)
	if rule == "" {
		return ""
	}
	return fmt.Sprintf("introduced by rule %s at iteration %d", rule, iter)
}

// Iteration returns the graph-lifetime saturation iteration counter (the
// value rows and unions are stamped with; 0 before any run).
func (g *EGraph) Iteration() int { return int(g.iterCur) }
