package dialegg_test

import (
	"fmt"
	"log"

	"dialegg/internal/dialects"
	"dialegg/internal/dialegg"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
)

// Example optimizes the paper's §7.2 division-by-power-of-two with the
// full DialEgg pipeline: translate to egglog, saturate, extract, rebuild.
func Example() {
	reg := dialects.NewRegistry()
	m, err := mlir.ParseModule(`
func.func @scale(%x: i64) -> i64 {
  %c256 = arith.constant 256 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}`, reg)
	if err != nil {
		log.Fatal(err)
	}
	opt := dialegg.NewOptimizer(dialegg.Options{RuleSources: rules.ImgConv()})
	if _, err := opt.OptimizeModule(m); err != nil {
		log.Fatal(err)
	}
	fmt.Print(mlir.PrintModule(m, reg))
	// Output:
	// module {
	//   func.func @scale(%x: i64) -> i64 {
	//     %0 = arith.constant 8 : i64
	//     %1 = arith.shrsi %x, %0 : i64
	//     func.return %1 : i64
	//   }
	// }
}
