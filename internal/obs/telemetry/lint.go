package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition (the bytes a /metrics
// scrape returns) against the format's structural invariants:
//
//   - metric and label names match the data model's syntax
//   - every sample's family has a preceding # TYPE (and # HELP) line,
//     with a known type, declared at most once
//   - sample values parse as floats; counter samples are non-negative
//   - no duplicate sample (same name and label set twice)
//   - histogram families carry _bucket/_sum/_count series, bucket counts
//     are cumulative (monotonically non-decreasing in le order), an +Inf
//     bucket exists, and it equals _count
//
// It returns the number of sample lines validated. It is the metrics
// analogue of obs.ValidateTrace, run by internal/obs/metricslint in
// `make metrics-smoke` and over live scrapes in the serve tests.
func Lint(data []byte) (int, error) {
	fams := make(map[string]*famInfo)
	seen := make(map[string]bool) // name+labels dedup
	type bucketSample struct {
		le  float64
		val float64
		raw string
	}
	buckets := make(map[string][]bucketSample) // base name -> le samples
	counts := make(map[string]float64)         // base name -> _count value
	sums := make(map[string]bool)              // base name -> _sum present

	samples := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return samples, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			if !metricNameRe.MatchString(name) {
				return samples, fmt.Errorf("metrics: line %d: invalid metric name %q", lineNo, name)
			}
			f := fams[name]
			if f == nil {
				f = &famInfo{}
				fams[name] = f
			}
			switch kind {
			case "HELP":
				f.hasHelp = true
			case "TYPE":
				if f.typ != "" {
					return samples, fmt.Errorf("metrics: line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					return samples, fmt.Errorf("metrics: line %d: unknown type %q for %s", lineNo, rest, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		samples++
		base := familyOf(name, fams)
		f := fams[base]
		if f == nil || f.typ == "" {
			return samples, fmt.Errorf("metrics: line %d: sample %s has no # TYPE", lineNo, name)
		}
		if !f.hasHelp {
			return samples, fmt.Errorf("metrics: line %d: sample %s has no # HELP", lineNo, name)
		}
		key := name + "\x00" + canonicalLabels(labels)
		if seen[key] {
			return samples, fmt.Errorf("metrics: line %d: duplicate sample %s{%s}", lineNo, name, canonicalLabels(labels))
		}
		seen[key] = true
		if f.typ == "counter" && value < 0 {
			return samples, fmt.Errorf("metrics: line %d: counter %s is negative (%g)", lineNo, name, value)
		}
		if f.typ == "histogram" {
			switch {
			case name == base+"_bucket":
				leStr, ok := labels["le"]
				if !ok {
					return samples, fmt.Errorf("metrics: line %d: %s without le label", lineNo, name)
				}
				le := math.Inf(1)
				if leStr != "+Inf" {
					if le, err = strconv.ParseFloat(leStr, 64); err != nil {
						return samples, fmt.Errorf("metrics: line %d: bad le %q", lineNo, leStr)
					}
				}
				buckets[base] = append(buckets[base], bucketSample{le: le, val: value, raw: leStr})
			case name == base+"_sum":
				sums[base] = true
			case name == base+"_count":
				counts[base] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, fmt.Errorf("metrics: %w", err)
	}

	// Cross-line histogram invariants.
	histNames := make([]string, 0, len(fams))
	for n, f := range fams {
		if f.typ == "histogram" {
			histNames = append(histNames, n)
		}
	}
	sort.Strings(histNames)
	for _, base := range histNames {
		bs := buckets[base]
		if len(bs) == 0 {
			return samples, fmt.Errorf("metrics: histogram %s has no _bucket samples", base)
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		prev := -1.0
		for _, b := range bs {
			if b.val < prev {
				return samples, fmt.Errorf("metrics: histogram %s: bucket le=%s count %g < previous %g (not cumulative)", base, b.raw, b.val, prev)
			}
			prev = b.val
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return samples, fmt.Errorf("metrics: histogram %s has no +Inf bucket", base)
		}
		cnt, ok := counts[base]
		if !ok {
			return samples, fmt.Errorf("metrics: histogram %s has no _count", base)
		}
		if !sums[base] {
			return samples, fmt.Errorf("metrics: histogram %s has no _sum", base)
		}
		if last.val != cnt {
			return samples, fmt.Errorf("metrics: histogram %s: +Inf bucket %g != _count %g", base, last.val, cnt)
		}
	}
	if samples == 0 {
		return 0, fmt.Errorf("metrics: no samples")
	}
	return samples, nil
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line.
// Other comments return kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	var k string
	switch {
	case strings.HasPrefix(body, "HELP "):
		k = "HELP"
	case strings.HasPrefix(body, "TYPE "):
		k = "TYPE"
	default:
		return "", "", "", nil
	}
	body = strings.TrimPrefix(body, k+" ")
	sp := strings.IndexByte(body, ' ')
	if sp < 0 {
		if k == "HELP" {
			return k, body, "", nil // help text may be empty
		}
		return "", "", "", fmt.Errorf("malformed %s line", k)
	}
	return k, body[:sp], strings.TrimSpace(body[sp+1:]), nil
}

// parseSample splits a sample line into name, labels, and value.
// Timestamps (an optional trailing integer) are accepted and ignored.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		name = line[:brace]
		end := strings.IndexByte(line[brace:], '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		if labels, err = parseLabels(line[brace+1 : brace+end]); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[brace+end+1:])
	} else {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value")
		}
		name = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %s: want value [timestamp], got %q", name, rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("sample %s: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseValue parses a sample value, accepting the format's special
// spellings +Inf, -Inf, and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` with escape handling.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// canonicalLabels renders a label set sorted by name, for dedup keys.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// familyOf maps a sample name to its declared family: histogram samples
// carry _bucket/_sum/_count suffixes on the family name.
func familyOf(name string, fams map[string]*famInfo) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && (f.typ == "histogram" || f.typ == "summary") {
				return base
			}
		}
	}
	return name
}

// famInfo is one declared family's metadata while linting.
type famInfo struct {
	typ     string
	hasHelp bool
}
