// Command tracelint validates observability artifacts in CI: a Chrome
// trace-event file (well-formed JSON, named events, monotonic complete
// events, balanced B/E pairs), a stats-JSON file (schema and cross-field
// invariants), and an e-graph event journal (known event kinds, iteration
// monotonicity, balanced rebuild markers, canonical union operands). It
// exits non-zero with a diagnostic when any file is malformed, which is
// what `make trace-smoke` and `make debug-smoke` check.
//
// Usage:
//
//	tracelint -trace trace.json [-stats stats.json] [-journal run.jsonl]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dialegg/internal/egraph"
	"dialegg/internal/obs"
	"dialegg/internal/obs/journal"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event file to validate")
	statsPath := flag.String("stats", "", "stats-JSON file to validate (egg-opt or egglog output)")
	journalPath := flag.String("journal", "", "e-graph event journal (JSONL) to validate")
	flag.Parse()

	if *tracePath == "" && *statsPath == "" && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "tracelint: nothing to do; pass -trace, -stats, and/or -journal")
		os.Exit(2)
	}
	if *tracePath != "" {
		spans, err := obs.ValidateTraceFile(*tracePath)
		fatalIf(err)
		fmt.Printf("trace OK: %s, %d spans\n", *tracePath, spans)
	}
	if *statsPath != "" {
		fatalIf(validateStats(*statsPath))
		fmt.Printf("stats OK: %s\n", *statsPath)
	}
	if *journalPath != "" {
		n, err := journal.LintFile(*journalPath)
		fatalIf(err)
		fmt.Printf("journal OK: %s, %d events\n", *journalPath, n)
	}
}

// validateStats parses a stats-JSON file — either an egg-opt report
// (engine report nested under "run") or a bare egglog run report — and
// checks the cross-field invariants the engine guarantees.
func validateStats(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("stats: not valid JSON: %w", err)
	}
	runData := data
	if nested, ok := probe["run"]; ok {
		runData = nested
	}
	var run egraph.RunReport
	if err := json.Unmarshal(runData, &run); err != nil {
		return fmt.Errorf("stats: run report: %w", err)
	}
	if run.Iterations < 1 {
		return fmt.Errorf("stats: no iterations recorded")
	}
	if len(run.PerIter) != run.Iterations {
		return fmt.Errorf("stats: %d per-iteration records for %d iterations", len(run.PerIter), run.Iterations)
	}
	var iterRows int64
	for i, it := range run.PerIter {
		iterRows += it.RowsScanned
		if len(it.TaskRows) > 0 {
			var taskRows int64
			for _, r := range it.TaskRows {
				taskRows += r
			}
			if taskRows != it.RowsScanned {
				return fmt.Errorf("stats: iter %d: task rows %d != rows scanned %d", i+1, taskRows, it.RowsScanned)
			}
		}
	}
	if iterRows != run.RowsScanned {
		return fmt.Errorf("stats: per-iteration rows %d != total rows scanned %d", iterRows, run.RowsScanned)
	}
	for _, r := range run.Rules {
		if r.Applied > r.Matched {
			return fmt.Errorf("stats: rule %s: applied %d > matched %d", r.Name, r.Applied, r.Matched)
		}
		if r.Noops > r.Applied {
			return fmt.Errorf("stats: rule %s: noops %d > applied %d", r.Name, r.Noops, r.Applied)
		}
	}
	if len(run.Rules) > 0 {
		var ruleRows int64
		for _, r := range run.Rules {
			ruleRows += r.RowsScanned
		}
		if ruleRows != run.RowsScanned {
			return fmt.Errorf("stats: per-rule rows %d != total rows scanned %d", ruleRows, run.RowsScanned)
		}
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint:", err)
		os.Exit(1)
	}
}
