// Package dialegg implements the paper's contribution: the dialect-agnostic
// bridge between MLIR and Egglog. It contains the preparation phase that
// scans egglog declarations for MLIR operation encodings (§5.1), the
// MLIR-to-Egglog translator (§5.3) including opaque-operation handling
// (§4.3), the saturation driver, and the Egglog-to-MLIR back-translation
// that rebuilds SSA form from the extracted term.
package dialegg

import (
	"fmt"
	"strings"

	"dialegg/internal/mlir"
	"dialegg/internal/sexp"
)

// EggOpName converts an MLIR operation name to its egglog function name:
// "arith.addi" -> "arith_addi". Only the dialect separator dot is
// rewritten; op names with further dots are unsupported by the encoding
// and become opaque.
func EggOpName(mlirName string) string {
	return strings.ReplaceAll(mlirName, ".", "_")
}

// MLIROpName converts an egglog function base name back to the MLIR name:
// "arith_addi" -> "arith.addi". Only the first underscore separates the
// dialect, matching the paper's convention ("the name of each variant
// starts with the dialect name followed by the operation name");
// underscores inside the op name (index_cast) are preserved.
func MLIROpName(eggName string) string {
	i := strings.IndexByte(eggName, '_')
	if i < 0 {
		return eggName
	}
	return eggName[:i] + "." + eggName[i+1:]
}

// TypeToTerm renders an MLIR type as its egglog term (§4.1). Types without
// a structural encoding become (OpaqueType serialized name).
func TypeToTerm(t mlir.Type) *sexp.Node {
	switch tt := t.(type) {
	case mlir.IntegerType:
		switch tt.Width {
		case 1, 8, 16, 32, 64:
			return sexp.List(sexp.Symbol(fmt.Sprintf("I%d", tt.Width)))
		}
	case mlir.FloatType:
		switch tt.Width {
		case 16, 32, 64:
			return sexp.List(sexp.Symbol(fmt.Sprintf("F%d", tt.Width)))
		}
	case mlir.IndexType:
		return sexp.List(sexp.Symbol("Index"))
	case mlir.NoneType:
		return sexp.List(sexp.Symbol("None"))
	case mlir.RankedTensorType:
		dims := sexp.List(sexp.Symbol("vec-of"))
		for _, d := range tt.Shape {
			dims.List = append(dims.List, sexp.Int(d))
		}
		return sexp.List(sexp.Symbol("RankedTensor"), dims, TypeToTerm(tt.Elem))
	case mlir.UnrankedTensorType:
		return sexp.List(sexp.Symbol("UnrankedTensor"), TypeToTerm(tt.Elem))
	}
	return sexp.List(sexp.Symbol("OpaqueType"), sexp.String(t.String()), sexp.String(typeName(t)))
}

func typeName(t mlir.Type) string {
	switch t.(type) {
	case mlir.FunctionType:
		return "builtin.function"
	case mlir.TupleType:
		return "builtin.tuple"
	case mlir.ComplexType:
		return "builtin.complex"
	case mlir.IntegerType:
		return "builtin.integer"
	case mlir.OpaqueType:
		return "opaque"
	default:
		return "unknown"
	}
}

// TermToType parses an egglog type term back to an MLIR type.
func TermToType(n *sexp.Node) (mlir.Type, error) {
	head := n.Head()
	switch head {
	case "I1":
		return mlir.I1, nil
	case "I8":
		return mlir.I8, nil
	case "I16":
		return mlir.I16, nil
	case "I32":
		return mlir.I32, nil
	case "I64":
		return mlir.I64, nil
	case "F16":
		return mlir.F16, nil
	case "F32":
		return mlir.F32, nil
	case "F64":
		return mlir.F64, nil
	case "Index":
		return mlir.Index, nil
	case "None":
		return mlir.NoneType{}, nil
	case "RankedTensor":
		if len(n.Args()) != 2 {
			return nil, fmt.Errorf("dialegg: RankedTensor expects 2 args: %s", n)
		}
		dims := n.Args()[0]
		if dims.Head() != "vec-of" {
			return nil, fmt.Errorf("dialegg: RankedTensor shape must be vec-of: %s", n)
		}
		var shape []int64
		for _, d := range dims.Args() {
			if d.Kind != sexp.KindInt {
				return nil, fmt.Errorf("dialegg: non-integer dimension in %s", n)
			}
			shape = append(shape, d.Int)
		}
		elem, err := TermToType(n.Args()[1])
		if err != nil {
			return nil, err
		}
		return mlir.RankedTensorType{Shape: shape, Elem: elem}, nil
	case "UnrankedTensor":
		elem, err := TermToType(n.Args()[0])
		if err != nil {
			return nil, err
		}
		return mlir.UnrankedTensorType{Elem: elem}, nil
	case "OpaqueType":
		if len(n.Args()) != 2 || n.Args()[0].Kind != sexp.KindString {
			return nil, fmt.Errorf("dialegg: malformed OpaqueType %s", n)
		}
		return mlir.OpaqueType{Text: n.Args()[0].Str}, nil
	default:
		return nil, fmt.Errorf("dialegg: unknown type term %s", n)
	}
}

// fastMathFlagNames maps mlir flags to egglog FastMathFlags variant names.
var fastMathFlagNames = map[mlir.FastMathFlag]string{
	mlir.FastMathNone:     "none",
	mlir.FastMathFast:     "fast",
	mlir.FastMathNNaN:     "nnan",
	mlir.FastMathNInf:     "ninf",
	mlir.FastMathContract: "contract",
	mlir.FastMathReassoc:  "reassoc",
}

// AttrToTerm renders an MLIR attribute as its egglog term (§4.2).
func AttrToTerm(a mlir.Attribute) *sexp.Node {
	switch at := a.(type) {
	case mlir.IntegerAttr:
		return sexp.List(sexp.Symbol("IntegerAttr"), sexp.Int(at.Value), TypeToTerm(at.Type))
	case mlir.FloatAttr:
		return sexp.List(sexp.Symbol("FloatAttr"), sexp.Float(at.Value), TypeToTerm(at.Type))
	case mlir.StringAttr:
		return sexp.List(sexp.Symbol("StringAttr"), sexp.String(at.Value))
	case mlir.SymbolRefAttr:
		return sexp.List(sexp.Symbol("SymbolAttr"), sexp.String(at.Symbol))
	case mlir.UnitAttr:
		return sexp.List(sexp.Symbol("UnitAttr"))
	case mlir.TypeAttr:
		return sexp.List(sexp.Symbol("TypeAttr"), TypeToTerm(at.Type))
	case mlir.FastMathAttr:
		name, ok := fastMathFlagNames[at.Flag]
		if !ok {
			name = "none"
		}
		return sexp.List(sexp.Symbol("arith_fastmath"), sexp.List(sexp.Symbol(name)))
	case mlir.DenseAttr:
		return sexp.List(sexp.Symbol("DenseAttr"), AttrToTerm(at.Splat), TypeToTerm(at.Type))
	default:
		return sexp.List(sexp.Symbol("OpaqueAttr"), sexp.String(a.String()))
	}
}

// NamedAttrToTerm renders {name = attr} as (NamedAttr "name" attr).
func NamedAttrToTerm(na mlir.NamedAttribute) *sexp.Node {
	return sexp.List(sexp.Symbol("NamedAttr"), sexp.String(na.Name), AttrToTerm(na.Attr))
}

// TermToAttr parses an egglog attribute term.
func TermToAttr(n *sexp.Node) (mlir.Attribute, error) {
	switch n.Head() {
	case "IntegerAttr":
		if len(n.Args()) != 2 || n.Args()[0].Kind != sexp.KindInt {
			return nil, fmt.Errorf("dialegg: malformed IntegerAttr %s", n)
		}
		t, err := TermToType(n.Args()[1])
		if err != nil {
			return nil, err
		}
		return mlir.IntegerAttr{Value: n.Args()[0].Int, Type: t}, nil
	case "FloatAttr":
		if len(n.Args()) != 2 {
			return nil, fmt.Errorf("dialegg: malformed FloatAttr %s", n)
		}
		v := n.Args()[0]
		var f float64
		switch v.Kind {
		case sexp.KindFloat:
			f = v.Float
		case sexp.KindInt:
			f = float64(v.Int)
		default:
			return nil, fmt.Errorf("dialegg: malformed FloatAttr value %s", n)
		}
		t, err := TermToType(n.Args()[1])
		if err != nil {
			return nil, err
		}
		return mlir.FloatAttr{Value: f, Type: t}, nil
	case "StringAttr":
		return mlir.StringAttr{Value: n.Args()[0].Str}, nil
	case "SymbolAttr":
		return mlir.SymbolRefAttr{Symbol: n.Args()[0].Str}, nil
	case "UnitAttr":
		return mlir.UnitAttr{}, nil
	case "TypeAttr":
		t, err := TermToType(n.Args()[0])
		if err != nil {
			return nil, err
		}
		return mlir.TypeAttr{Type: t}, nil
	case "arith_fastmath":
		if len(n.Args()) != 1 {
			return nil, fmt.Errorf("dialegg: malformed arith_fastmath %s", n)
		}
		flagName := n.Args()[0].Head()
		for flag, name := range fastMathFlagNames {
			if name == flagName {
				return mlir.FastMathAttr{Flag: flag}, nil
			}
		}
		return nil, fmt.Errorf("dialegg: unknown fastmath flag %s", n)
	case "DenseAttr":
		splat, err := TermToAttr(n.Args()[0])
		if err != nil {
			return nil, err
		}
		t, err := TermToType(n.Args()[1])
		if err != nil {
			return nil, err
		}
		return mlir.DenseAttr{Splat: splat, Type: t}, nil
	case "OpaqueAttr":
		return mlir.OpaqueAttr{Text: n.Args()[0].Str}, nil
	default:
		return nil, fmt.Errorf("dialegg: unknown attribute term %s", n)
	}
}

// TermToNamedAttr parses (NamedAttr "name" attr).
func TermToNamedAttr(n *sexp.Node) (mlir.NamedAttribute, error) {
	if n.Head() != "NamedAttr" || len(n.Args()) != 2 || n.Args()[0].Kind != sexp.KindString {
		return mlir.NamedAttribute{}, fmt.Errorf("dialegg: malformed NamedAttr %s", n)
	}
	a, err := TermToAttr(n.Args()[1])
	if err != nil {
		return mlir.NamedAttribute{}, err
	}
	return mlir.NamedAttribute{Name: n.Args()[0].Str, Attr: a}, nil
}
