package egraph

import (
	"testing"
)

// TestFirstChoiceVsCostExtractor: after uniting an expensive and a cheap
// form, the cost-blind extractor keeps the original (first-inserted)
// expensive node while the cost-guided one switches — quantifying the cost
// model's contribution (DESIGN.md §5 ablation).
func TestFirstChoiceVsCostExtractor(t *testing.T) {
	g := New()
	expr, _ := g.AddEqSort("Expr")
	mk := func(name string, cost int64, params ...*Sort) *Function {
		f, err := g.DeclareFunction(&Function{Name: name, Params: params, Out: expr, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	leaf := mk("X", 1)
	div := mk("Div", 18, expr)
	shr := mk("Shr", 1, expr)

	x, _ := g.Insert(leaf)
	d, _ := g.Insert(div, x) // inserted first: the "original" program
	s, _ := g.Insert(shr, x) // discovered by a rewrite
	g.Union(d, s)
	g.Rebuild()

	first := NewFirstChoiceExtractor(g)
	fTerm, fCost, err := first.Extract(d)
	if err != nil {
		t.Fatal(err)
	}
	cost := NewExtractor(g)
	cTerm, cCost, err := cost.Extract(d)
	if err != nil {
		t.Fatal(err)
	}
	if fTerm.Head() != "Div" {
		t.Errorf("first-choice should keep the original Div, got %s", fTerm)
	}
	if cTerm.Head() != "Shr" {
		t.Errorf("cost-guided should pick Shr, got %s", cTerm)
	}
	if cCost >= fCost {
		t.Errorf("cost-guided (%d) should beat first-choice (%d)", cCost, fCost)
	}
}

// TestFirstChoiceHandlesCycles: self-referential nodes (from identity-like
// unions) never trap the cost-blind extractor.
func TestFirstChoiceHandlesCycles(t *testing.T) {
	g := New()
	expr, _ := g.AddEqSort("Expr")
	num, _ := g.DeclareFunction(&Function{Name: "Num", Params: []*Sort{g.I64}, Out: expr, Cost: 1})
	id, _ := g.DeclareFunction(&Function{Name: "Id", Params: []*Sort{expr}, Out: expr, Cost: 1})

	n, _ := g.Insert(num, I64Value(g.I64, 7))
	wrapped, _ := g.Insert(id, n)
	// Id(x) = x: the class now contains a node referencing itself.
	g.Union(wrapped, n)
	g.Rebuild()

	e := NewFirstChoiceExtractor(g)
	term, _, err := e.Extract(n)
	if err != nil {
		t.Fatal(err)
	}
	// Either form is fine as long as it is finite; the leaf must appear.
	if term.String() != "(Num 7)" && term.String() != "(Id (Num 7))" {
		t.Errorf("unexpected term %s", term)
	}
}

func BenchmarkExtractorAblation(b *testing.B) {
	build := func() (*EGraph, Value) {
		l := newExprLangQuiet()
		g := l.g
		prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
		for i := 1; i < 1000; i++ {
			leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
			m, _ := g.Insert(l.Mul, prev, leaf)   // cost 2
			alt, _ := g.Insert(l.Shl, prev, leaf) // cost 1 alternative
			g.Union(m, alt)
			prev = m
		}
		g.Rebuild()
		return g, prev
	}
	b.Run("cost-guided", func(b *testing.B) {
		g, root := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex := NewExtractor(g)
			if _, _, err := ex.Extract(root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("first-choice", func(b *testing.B) {
		g, root := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex := NewFirstChoiceExtractor(g)
			if _, _, err := ex.Extract(root); err != nil {
				b.Fatal(err)
			}
		}
	})
}
