// Fast inverse square root: the §7.3 case study as a runnable example.
//
// Attribute-based matching: the rewrite replaces 1/sqrt(x) with a call to
// the Quake III fast inverse square root, but only when both operations
// carry the fastmath<fast> flag — MLIR attributes are first-class in the
// e-graph, so the rule simply mentions them. The example shows the rewrite
// firing for a fastmath function and not firing for a strict one, and
// reports the approximation error the fast path introduces.
//
// Run with: go run ./examples/fastinvsqrt
package main

import (
	"fmt"
	"log"
	"math"

	"dialegg/internal/dialects"
	"dialegg/internal/dialegg"
	"dialegg/internal/interp"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
)

const program = `
func.func @inv_fast(%x: f32) -> f32 {
  %one = arith.constant 1.0 : f32
  %s = math.sqrt %x fastmath<fast> : f32
  %r = arith.divf %one, %s fastmath<fast> : f32
  func.return %r : f32
}
func.func @inv_strict(%x: f32) -> f32 {
  %one = arith.constant 1.0 : f32
  %s = math.sqrt %x : f32
  %r = arith.divf %one, %s : f32
  func.return %r : f32
}
`

func main() {
	reg := dialects.NewRegistry()
	m, err := mlir.ParseModule(program, reg)
	if err != nil {
		log.Fatal(err)
	}

	opt := dialegg.NewOptimizer(dialegg.Options{RuleSources: rules.VecNorm()})
	if _, err := opt.OptimizeModule(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== after DialEgg (only @inv_fast may use the approximation) ===")
	fmt.Print(mlir.PrintModule(m, reg))

	in := interp.New(m)
	for _, x := range []float64{0.25, 1, 2, 4, 100} {
		fast, err := in.Call("inv_fast", interp.FloatValue(x))
		if err != nil {
			log.Fatal(err)
		}
		strict, err := in.Call("inv_strict", interp.FloatValue(x))
		if err != nil {
			log.Fatal(err)
		}
		exact := 1 / math.Sqrt(x)
		fmt.Printf("x=%6.2f  exact=%.6f  strict=%.6f  fast=%.6f  (fast rel err %.4f%%)\n",
			x, exact, strict[0].Float(), fast[0].Float(),
			100*math.Abs(fast[0].Float()-exact)/exact)
	}
}
