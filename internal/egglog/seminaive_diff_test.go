package egglog_test

// Differential tests for semi-naive (delta-frontier) matching at the
// egglog-program and MLIR-pipeline levels. The contract: the default
// mode — which from the second iteration of a run on only matches
// sub-queries anchored at rows the previous iteration changed — produces
// output byte-identical to naive full re-matching, for every worker
// count, while scanning strictly fewer rows on real workloads.

import (
	"testing"

	"dialegg/internal/bench"
)

// TestSemiNaiveDiffEgglogPrograms: every corpus program yields the same
// fingerprint naive and semi-naive, serial and with 8 workers.
func TestSemiNaiveDiffEgglogPrograms(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			want := runFingerprint(t, tc.src, 1, true)
			for _, mode := range []struct {
				workers int
				naive   bool
			}{
				{8, true},
				{1, false},
				{8, false},
			} {
				got := runFingerprint(t, tc.src, mode.workers, mode.naive)
				if got != want {
					t.Errorf("workers=%d naive=%v diverged from naive serial:\n--- want ---\n%s--- got ---\n%s",
						mode.workers, mode.naive, want, got)
				}
			}
		})
	}
}

// TestSemiNaiveDiffBenchWorkloads: end-to-end over the paper's benchmark
// workloads — semi-naive at 1 and 8 workers produces the exact MLIR,
// costs, and union counts of naive matching, and from iteration 2 on it
// scans strictly fewer rows than naive does.
func TestSemiNaiveDiffBenchWorkloads(t *testing.T) {
	for _, b := range bench.DefaultBenchmarks(bench.ScaleCI) {
		t.Run(b.Name, func(t *testing.T) {
			want, naiveRep := optimizeFingerprint(t, b, 1, true)
			for _, workers := range []int{1, 8} {
				got, semiRep := optimizeFingerprint(t, b, workers, false)
				if got != want {
					t.Errorf("semi-naive workers=%d diverged from naive:\n--- want ---\n%s--- got ---\n%s",
						workers, want, got)
					continue
				}
				// Rows scanned from the second iteration on (the first is a
				// full match in both modes).
				var naiveTail, semiTail int64
				for _, it := range naiveRep.Run.PerIter[1:] {
					naiveTail += it.RowsScanned
				}
				for _, it := range semiRep.Run.PerIter[1:] {
					semiTail += it.RowsScanned
				}
				if semiRep.Run.Iterations > 1 && semiTail >= naiveTail {
					t.Errorf("workers=%d: semi-naive scanned %d rows after iteration 1, naive %d — want strictly fewer",
						workers, semiTail, naiveTail)
				}
			}
		})
	}
}
