package dialegg

// Prelude is DialEgg's pre-defined Egglog environment (§3 "Pre-defined
// constructs"): the sorts for MLIR types, attributes, operations, blocks
// and regions, the builtin-dialect types and attributes, and the helper
// analyses (type-of, nrows, ncols) used by type-based cost models (§6.2).
// User rule files execute after this prelude and may reference everything
// declared here.
const Prelude = `
; ---- core sorts ----
(sort Type)
(sort Attr)
(sort AttrPair)
(sort Op)
(sort IntVec (Vec i64))
(sort OpVec (Vec Op))
(datatype Block (Blk OpVec))
(sort BlockVec (Vec Block))
(datatype Region (Reg BlockVec))

; ---- builtin types (§4.1) ----
(function I1 () Type)
(function I8 () Type)
(function I16 () Type)
(function I32 () Type)
(function I64 () Type)
(function F16 () Type)
(function F32 () Type)
(function F64 () Type)
(function Index () Type)
(function None () Type)
(function RankedTensor (IntVec Type) Type)
(function UnrankedTensor (Type) Type)
(function OpaqueType (String String) Type)

; ---- builtin attributes (§4.2) ----
(function IntegerAttr (i64 Type) Attr)
(function FloatAttr (f64 Type) Attr)
(function StringAttr (String) Attr)
(function SymbolAttr (String) Attr)
(function UnitAttr () Attr)
(function TypeAttr (Type) Attr)
(function DenseAttr (Attr Type) Attr)
(function OpaqueAttr (String) Attr)
(datatype FastMathFlags (none) (fast) (nnan) (ninf) (contract) (reassoc))
(function arith_fastmath (FastMathFlags) Attr)
(function NamedAttr (String Attr) AttrPair)

; ---- values (§4.3): block arguments and opaque operation results ----
(function Value (i64 Type) Op :cost 1)

; ---- structural operations pre-defined by DialEgg ----
; Terminators and region-carrying control flow are needed by every use
; case, so they ship with the tool.
(function func_return (Op) Op)
(function scf_yield (Op) Op)
(function scf_yield_0 () Op)
(function scf_if (Op Region Region Type) Op)
(function scf_for (Op Op Op Region) Op)       ; lb ub step body (no results)
(function scf_for_4 (Op Op Op Op Region Type) Op) ; one iter_arg variant
(function scf_while_1 (Op Region Region Type) Op) ; one-init while loop
(function scf_condition (Op Op) Op)           ; condition + one forwarded value

; ---- analyses for cost models (§6.2) ----
(function type-of (Op) Type)
(function nrows (Type) i64)
(function ncols (Type) i64)

; every matrix-shaped tensor type exposes its dimensions (listing 6)
(rule ((= ?t (RankedTensor ?shape ?e))
       (>= (vec-length ?shape) 2))
      ((set (nrows ?t) (vec-get ?shape 0))
       (set (ncols ?t) (vec-get ?shape 1))))

; values know their type
(rule ((= ?v (Value ?id ?t))) ((set (type-of ?v) ?t)))
`
