package difftest

import (
	"bytes"
	"fmt"

	"dialegg/internal/dialegg"
	"dialegg/internal/egraph"
	"dialegg/internal/memo"
	"dialegg/internal/mlir"
	"dialegg/internal/obs/journal"
	"dialegg/internal/sched"
)

// checkProperties runs the metamorphic side of the oracle. Unlike the
// differential side, these properties need no inputs: they assert
// structural invariants of the toolchain itself.
//
//   - print-roundtrip: PrintModuleCanonical is a fixed point of
//     parse-then-print, for both the original and the optimized module.
//   - idempotence: optimizing the optimized module again emits the same
//     canonical text — saturation has nothing left to say, so extraction
//     must re-pick the same program.
//   - journal-replay: a journaled optimization replays bit-identically
//     (snapshot byte-comparison at every recorded iteration).
//   - sched-agreement: the Simple rule scheduler reproduces the
//     unscheduled extraction exactly, and a saturated Backoff run
//     extracts the same program as the unscheduled run (scheduling only
//     changes how saturation proceeds, never where it lands).
//   - memo-determinism: the content-address of the module is stable and
//     two independent optimizations of the same input emit byte-identical
//     text — the property that makes serving cache hits sound.
func checkProperties(m, om *mlir.Module, origSrc, optSrc string, reg *mlir.Registry, opts Options) *Failure {
	fail := func(name, detail string) *Failure {
		return &Failure{Kind: "property:" + name, Detail: detail,
			Original: origSrc, Optimized: optSrc}
	}

	for _, p := range []struct{ label, src string }{{"original", origSrc}, {"optimized", optSrc}} {
		m2, err := mlir.ParseModule(p.src, reg)
		if err != nil {
			return fail("print-roundtrip", fmt.Sprintf("%s canonical text does not re-parse: %v", p.label, err))
		}
		if again := mlir.PrintModuleCanonical(m2, reg); again != p.src {
			return fail("print-roundtrip", fmt.Sprintf("%s: parse-print is not a fixed point:\n--- first\n%s\n--- second\n%s", p.label, p.src, again))
		}
	}

	opt := dialegg.NewOptimizer(dialegg.Options{RuleSources: opts.Rules, RunConfig: opts.RunConfig})
	om2 := om.Clone()
	if _, err := opt.OptimizeModule(om2); err != nil {
		return fail("idempotence", fmt.Sprintf("re-optimizing the optimized module failed: %v", err))
	}
	if twice := mlir.PrintModuleCanonical(om2, reg); twice != optSrc {
		return fail("idempotence", fmt.Sprintf("second optimization changed the program:\n--- once\n%s\n--- twice\n%s", optSrc, twice))
	}

	if f := checkJournalReplay(m, origSrc, optSrc, opts, fail); f != nil {
		return f
	}

	if f := checkSchedAgreement(m, optSrc, reg, opts, fail); f != nil {
		return f
	}

	canon, err := memo.CanonicalizeMLIR(origSrc)
	if err != nil {
		return fail("memo-determinism", fmt.Sprintf("canonicalize: %v", err))
	}
	k1 := memo.Key(canon, opts.Rules, opts.RunConfig)
	k2 := memo.Key(canon, opts.Rules, opts.RunConfig)
	if k1 != k2 {
		return fail("memo-determinism", fmt.Sprintf("content address is unstable: %s != %s", k1, k2))
	}
	om3 := m.Clone()
	opt2 := dialegg.NewOptimizer(dialegg.Options{RuleSources: opts.Rules, RunConfig: opts.RunConfig})
	if _, err := opt2.OptimizeModule(om3); err != nil {
		return fail("memo-determinism", fmt.Sprintf("repeat optimization failed: %v", err))
	}
	if rerun := mlir.PrintModuleCanonical(om3, reg); rerun != optSrc {
		return fail("memo-determinism", fmt.Sprintf("two optimizations of the same input disagree:\n--- first\n%s\n--- second\n%s", optSrc, rerun))
	}
	return nil
}

// checkSchedAgreement is the rule-scheduling metamorphic property: a
// scheduled run may change how saturation proceeds, never where it
// lands. Concretely: the Simple scheduler must reproduce the unscheduled
// extraction byte-for-byte unconditionally (it is the documented
// bit-identical default), and a throttling Backoff run that still
// reaches saturation must extract the same program too — both runs saw
// the full congruence closure, so extraction has the same choices.
// Backoff runs cut short by an iteration or node limit are exempt: a ban
// can legitimately push work past the horizon.
func checkSchedAgreement(m *mlir.Module, optSrc string, reg *mlir.Registry, opts Options, fail func(name, detail string) *Failure) *Failure {
	run := func(s sched.Scheduler) (string, *dialegg.Report, error) {
		cfg := opts.RunConfig
		cfg.Scheduler = s
		sm := m.Clone()
		opt := dialegg.NewOptimizer(dialegg.Options{RuleSources: opts.Rules, RunConfig: cfg})
		rep, err := opt.OptimizeModule(sm)
		if err != nil {
			return "", nil, err
		}
		return mlir.PrintModuleCanonical(sm, reg), rep, nil
	}

	simpleSrc, _, err := run(sched.Simple{})
	if err != nil {
		return fail("sched-agreement", fmt.Sprintf("simple-scheduled optimization failed: %v", err))
	}
	if simpleSrc != optSrc {
		return fail("sched-agreement", fmt.Sprintf("Simple scheduler diverged from the unscheduled run:\n--- unscheduled\n%s\n--- simple\n%s", optSrc, simpleSrc))
	}

	backoffSrc, rep, err := run(sched.Backoff{Threshold: 8, Factor: 2, BanLength: 3})
	if err != nil {
		return fail("sched-agreement", fmt.Sprintf("backoff-scheduled optimization failed: %v", err))
	}
	if rep.Run.Stop == egraph.StopSaturated && backoffSrc != optSrc {
		return fail("sched-agreement", fmt.Sprintf("saturated backoff run extracted a different program:\n--- unscheduled\n%s\n--- backoff\n%s", optSrc, backoffSrc))
	}
	return nil
}

// checkJournalReplay re-optimizes with a journal attached (snapshot every
// iteration) and replays every graph segment with snapshot verification.
func checkJournalReplay(m *mlir.Module, origSrc, optSrc string, opts Options, fail func(name, detail string) *Failure) *Failure {
	var buf bytes.Buffer
	w := journal.NewWriter(&buf)
	opt := dialegg.NewOptimizer(dialegg.Options{
		RuleSources: opts.Rules, RunConfig: opts.RunConfig,
		Journal: w, SnapshotEvery: 1,
	})
	jm := m.Clone()
	if _, err := opt.OptimizeModule(jm); err != nil {
		return fail("journal-replay", fmt.Sprintf("journaled optimization failed: %v", err))
	}
	if err := w.Flush(); err != nil {
		return fail("journal-replay", fmt.Sprintf("journal flush: %v", err))
	}
	events, err := journal.Read(&buf)
	if err != nil {
		return fail("journal-replay", fmt.Sprintf("journal read-back: %v", err))
	}
	if err := journal.Lint(events); err != nil {
		return fail("journal-replay", fmt.Sprintf("journal lint: %v", err))
	}
	graphs := 0
	for _, e := range events {
		if e.Kind == journal.KGraph {
			graphs++
		}
	}
	for g := 0; g < graphs; g++ {
		if _, _, err := egraph.Replay(events, egraph.ReplayOptions{ToIter: -1, Graph: g, Verify: true}); err != nil {
			return fail("journal-replay", fmt.Sprintf("graph %d does not replay: %v", g, err))
		}
	}
	return nil
}
