package passes

import (
	"strings"
	"testing"

	"dialegg/internal/dialects"
	"dialegg/internal/mlir"
)

func parse(t *testing.T, src string) (*mlir.Module, *mlir.Registry) {
	t.Helper()
	reg := dialects.NewRegistry()
	m, err := mlir.ParseModule(src, reg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m, reg
}

func runPass(t *testing.T, m *mlir.Module, reg *mlir.Registry, p Pass) {
	t.Helper()
	pm := NewPassManager(reg).Add(p)
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pass %s: %v", p.Name(), err)
	}
}

func countOps(m *mlir.Module, name string) int {
	n := 0
	m.Walk(func(op *mlir.Operation) bool {
		if op.Name == name {
			n++
		}
		return true
	})
	return n
}

// TestConstantFolding reproduces the §7.1 example: 2+3 folds to 5.
func TestConstantFolding(t *testing.T) {
	m, reg := parse(t, `
func.func @f() -> i32 {
  %c2 = arith.constant 2 : i32
  %c3 = arith.constant 3 : i32
  %sum = arith.addi %c2, %c3 : i32
  func.return %sum : i32
}`)
	runPass(t, m, reg, NewCanonicalize())
	if n := countOps(m, "arith.addi"); n != 0 {
		t.Errorf("addi not folded, %d remain", n)
	}
	out := mlir.PrintModule(m, reg)
	if !strings.Contains(out, "arith.constant 5 : i32") {
		t.Errorf("expected folded constant 5:\n%s", out)
	}
	// The dead 2 and 3 constants must be gone.
	if n := countOps(m, "arith.constant"); n != 1 {
		t.Errorf("constants remaining = %d, want 1", n)
	}
}

func TestIdentityFolds(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: i64) -> i64 {
  %c0 = arith.constant 0 : i64
  %c1 = arith.constant 1 : i64
  %a = arith.addi %x, %c0 : i64
  %b = arith.muli %a, %c1 : i64
  %c = arith.shli %b, %c0 : i64
  func.return %c : i64
}`)
	runPass(t, m, reg, NewCanonicalize())
	f := m.Funcs()[0]
	body := f.Regions[0].First()
	if len(body.Ops) != 1 || body.Ops[0].Name != "func.return" {
		t.Errorf("expected identity chain to fold to a bare return:\n%s", mlir.PrintModule(m, reg))
	}
	// The return must now use %x directly.
	if body.Ops[0].Operands[0] != body.Args[0] {
		t.Error("return does not use the argument directly")
	}
}

func TestMulByZeroAnnihilates(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: i64) -> i64 {
  %c0 = arith.constant 0 : i64
  %r = arith.muli %x, %c0 : i64
  func.return %r : i64
}`)
	runPass(t, m, reg, NewCanonicalize())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "arith.muli") != 0 {
		t.Errorf("x*0 not annihilated:\n%s", out)
	}
}

func TestCSE(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f64) -> f64 {
  %a = arith.mulf %x, %x : f64
  %b = arith.mulf %x, %x : f64
  %r = arith.addf %a, %b : f64
  func.return %r : f64
}`)
	runPass(t, m, reg, NewCanonicalize())
	if n := countOps(m, "arith.mulf"); n != 1 {
		t.Errorf("CSE left %d mulf ops, want 1", n)
	}
}

// TestCSEAcrossRegions: an inner region can reuse an outer computation but
// not vice versa.
func TestCSEAcrossRegions(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f64, %c: i1) -> f64 {
  %a = arith.mulf %x, %x : f64
  %r = scf.if %c -> (f64) {
    %b = arith.mulf %x, %x : f64
    scf.yield %b : f64
  } else {
    scf.yield %a : f64
  }
  func.return %r : f64
}`)
	runPass(t, m, reg, NewCanonicalize())
	if n := countOps(m, "arith.mulf"); n != 1 {
		t.Errorf("CSE across regions left %d mulf ops, want 1:\n%s", n, mlir.PrintModule(m, reg))
	}
}

func TestDCEKeepsImpure(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f32) -> f32 {
  %dead = arith.addf %x, %x : f32
  %r = "mydialect.effectful"(%x) : (f32) -> f32
  func.return %x : f32
}`)
	runPass(t, m, reg, NewCanonicalize())
	if countOps(m, "arith.addf") != 0 {
		t.Error("dead pure op not removed")
	}
	if countOps(m, "mydialect.effectful") != 1 {
		t.Error("unregistered (potentially effectful) op must be kept")
	}
}

func TestSelectFold(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%a: i64, %b: i64) -> i64 {
  %t = arith.constant true
  %r = arith.select %t, %a, %b : i64
  func.return %r : i64
}`)
	runPass(t, m, reg, NewCanonicalize())
	if countOps(m, "arith.select") != 0 {
		t.Errorf("select with constant cond not folded:\n%s", mlir.PrintModule(m, reg))
	}
}

const twoMM = `
func.func @two_mm(%A: tensor<100x10xf64>, %B: tensor<10x150xf64>, %C: tensor<150x8xf64>) -> tensor<100x8xf64> {
  %e1 = tensor.empty() : tensor<100x150xf64>
  %AB = linalg.matmul ins(%A, %B : tensor<100x10xf64>, tensor<10x150xf64>) outs(%e1 : tensor<100x150xf64>) -> tensor<100x150xf64>
  %e2 = tensor.empty() : tensor<100x8xf64>
  %r = linalg.matmul ins(%AB, %C : tensor<100x150xf64>, tensor<150x8xf64>) outs(%e2 : tensor<100x8xf64>) -> tensor<100x8xf64>
  func.return %r : tensor<100x8xf64>
}`

// TestGreedyMatmul2MM: on the paper's 2MM shapes (100x10 · 10x150 · 150x8)
// the greedy pass must flip to A·(B·C):
// (AB)C = 100*10*150 + 100*150*8 = 270,000 multiplications
// A(BC) = 10*150*8 + 100*10*8   = 20,000 multiplications (paper §7.4)
func TestGreedyMatmul2MM(t *testing.T) {
	m, reg := parse(t, twoMM)
	p := NewMatmulReassociate()
	runPass(t, m, reg, p)
	if p.Rewrites != 1 {
		t.Errorf("rewrites = %d, want 1", p.Rewrites)
	}
	if err := reg.Verify(m.Op); err != nil {
		t.Fatalf("verify after rewrite: %v", err)
	}
	if got := chainMulCost(m); got != 20000 {
		t.Errorf("multiplication count after greedy = %d, want 20000", got)
	}
}

// chainMulCost sums a*b*c over every matmul in the module.
func chainMulCost(m *mlir.Module) int64 {
	var total int64
	m.Walk(func(op *mlir.Operation) bool {
		if op.Name == "linalg.matmul" {
			a, b, c, ok := matmulShape(op)
			if ok {
				total += a * b * c
			}
		}
		return true
	})
	return total
}

// TestGreedyMatmulSuboptimal3MM constructs a chain where greedy local
// reassociation gets stuck in a local optimum while the global optimum is
// cheaper — the §8.4 phenomenon. Shapes: A 10x30, B 30x5, C 5x60, D 60x8.
// Optimal order is (A(BC))D? Enumerate: the greedy pass walking outermost-
// first sees ((AB)C)D and flips only profitable local windows.
func TestGreedyMatmulImproves3MM(t *testing.T) {
	src := `
func.func @three_mm(%A: tensor<200x175xf64>, %B: tensor<175x250xf64>, %C: tensor<250x150xf64>, %D: tensor<150x10xf64>) -> tensor<200x10xf64> {
  %e1 = tensor.empty() : tensor<200x250xf64>
  %AB = linalg.matmul ins(%A, %B : tensor<200x175xf64>, tensor<175x250xf64>) outs(%e1 : tensor<200x250xf64>) -> tensor<200x250xf64>
  %e2 = tensor.empty() : tensor<200x150xf64>
  %ABC = linalg.matmul ins(%AB, %C : tensor<200x250xf64>, tensor<250x150xf64>) outs(%e2 : tensor<200x150xf64>) -> tensor<200x150xf64>
  %e3 = tensor.empty() : tensor<200x10xf64>
  %r = linalg.matmul ins(%ABC, %D : tensor<200x150xf64>, tensor<150x10xf64>) outs(%e3 : tensor<200x10xf64>) -> tensor<200x10xf64>
  func.return %r : tensor<200x10xf64>
}`
	m, reg := parse(t, src)
	before := chainMulCost(m)
	p := NewMatmulReassociate()
	runPass(t, m, reg, p)
	after := chainMulCost(m)
	if after >= before {
		t.Errorf("greedy did not improve: before %d after %d", before, after)
	}
	if err := reg.Verify(m.Op); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Global optimum for these shapes (computed by dynamic programming):
	// the greedy result must not beat it.
	optimal := matrixChainOptimal([]int64{200, 175, 250, 150, 10})
	if after < optimal {
		t.Errorf("greedy %d beats DP optimum %d — DP bug", after, optimal)
	}
	t.Logf("3MM chain: naive=%d greedy=%d optimal=%d", before, after, optimal)
}

// matrixChainOptimal is the classical O(n^3) DP for matrix-chain ordering,
// used as a test oracle.
func matrixChainOptimal(dims []int64) int64 {
	n := len(dims) - 1
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = 1 << 62
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] + dims[i]*dims[k+1]*dims[j+1]
				if c < cost[i][j] {
					cost[i][j] = c
				}
			}
		}
	}
	return cost[0][n-1]
}

func TestPassManagerTimings(t *testing.T) {
	m, reg := parse(t, twoMM)
	pm := NewPassManager(reg).Add(NewCanonicalize()).Add(NewMatmulReassociate())
	timings, err := pm.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 2 {
		t.Fatalf("timings = %d, want 2", len(timings))
	}
	if timings[0].Pass != "canonicalize" || timings[1].Pass != "greedy-matmul-reassociate" {
		t.Errorf("timing names: %+v", timings)
	}
}

func TestCanonicalizeStable(t *testing.T) {
	// Canonicalization must be idempotent: a second run changes nothing.
	m, reg := parse(t, `
func.func @f(%x: i64) -> i64 {
  %c2 = arith.constant 2 : i64
  %c3 = arith.constant 3 : i64
  %a = arith.muli %c2, %c3 : i64
  %b = arith.addi %x, %a : i64
  func.return %b : i64
}`)
	runPass(t, m, reg, NewCanonicalize())
	first := mlir.PrintModule(m, reg)
	runPass(t, m, reg, NewCanonicalize())
	second := mlir.PrintModule(m, reg)
	if first != second {
		t.Errorf("canonicalize not idempotent:\n%s\nvs\n%s", first, second)
	}
}

// TestIfSimplification: scf.if with a constant condition inlines the taken
// branch (MLIR's region simplification).
func TestIfSimplification(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f64) -> f64 {
  %t = arith.constant true
  %r = scf.if %t -> (f64) {
    %a = arith.mulf %x, %x : f64
    scf.yield %a : f64
  } else {
    %b = arith.addf %x, %x : f64
    scf.yield %b : f64
  }
  func.return %r : f64
}`)
	runPass(t, m, reg, NewCanonicalize())
	out := mlir.PrintModule(m, reg)
	if countOps(m, "scf.if") != 0 {
		t.Errorf("constant-condition if not inlined:\n%s", out)
	}
	if countOps(m, "arith.mulf") != 1 || countOps(m, "arith.addf") != 0 {
		t.Errorf("wrong branch survived:\n%s", out)
	}
}

func TestIfSimplificationFalseNoElse(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f64) -> f64 {
  %f = arith.constant false
  scf.if %f {
    "sideeffect.op"() : () -> ()
    scf.yield
  }
  func.return %x : f64
}`)
	runPass(t, m, reg, NewCanonicalize())
	if countOps(m, "scf.if") != 0 || countOps(m, "sideeffect.op") != 0 {
		t.Errorf("false if without else should vanish:\n%s", mlir.PrintModule(m, reg))
	}
}

func TestIfSimplificationDynamicUntouched(t *testing.T) {
	m, reg := parse(t, `
func.func @f(%x: f64, %c: i1) -> f64 {
  %r = scf.if %c -> (f64) {
    scf.yield %x : f64
  } else {
    %b = arith.addf %x, %x : f64
    scf.yield %b : f64
  }
  func.return %r : f64
}`)
	runPass(t, m, reg, NewCanonicalize())
	if countOps(m, "scf.if") != 1 {
		t.Errorf("dynamic-condition if must stay:\n%s", mlir.PrintModule(m, reg))
	}
}
