// Package mlir implements the MLIR-like intermediate representation that
// DialEgg optimizes: a multi-dialect SSA IR with operations, typed values,
// attributes, blocks and regions, plus a textual parser and printer for the
// pretty syntax of the dialects used in the paper (builtin, func, arith,
// math, scf, tensor, linalg).
package mlir

import (
	"fmt"
	"strings"
)

// Type is an MLIR type. Types are immutable; Equal compares structurally
// and String returns the canonical MLIR syntax.
type Type interface {
	fmt.Stringer
	isType()
}

// TypeEqual reports structural equality of two types via their canonical
// text, which is unique per type in this IR.
func TypeEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IntegerType is the builtin iN type (signless, as in MLIR).
type IntegerType struct {
	// Width in bits (1, 8, 16, 32, 64).
	Width int
}

func (t IntegerType) isType()        {}
func (t IntegerType) String() string { return fmt.Sprintf("i%d", t.Width) }

// Common integer types.
var (
	I1  = IntegerType{Width: 1}
	I8  = IntegerType{Width: 8}
	I16 = IntegerType{Width: 16}
	I32 = IntegerType{Width: 32}
	I64 = IntegerType{Width: 64}
)

// FloatType is the builtin fN type.
type FloatType struct {
	// Width in bits (16, 32, 64).
	Width int
}

func (t FloatType) isType()        {}
func (t FloatType) String() string { return fmt.Sprintf("f%d", t.Width) }

// Common float types.
var (
	F16 = FloatType{Width: 16}
	F32 = FloatType{Width: 32}
	F64 = FloatType{Width: 64}
)

// IndexType is the builtin index type used for loop bounds and tensor
// indexing.
type IndexType struct{}

func (IndexType) isType()        {}
func (IndexType) String() string { return "index" }

// Index is the canonical index type value.
var Index = IndexType{}

// NoneType is the builtin none type.
type NoneType struct{}

func (NoneType) isType()        {}
func (NoneType) String() string { return "none" }

// DynamicDim marks a dynamic dimension in a tensor shape (printed as '?').
const DynamicDim = int64(-1)

// RankedTensorType is tensor<d0xd1x...xElem>.
type RankedTensorType struct {
	Shape []int64
	Elem  Type
}

func (t RankedTensorType) isType() {}

func (t RankedTensorType) String() string {
	var b strings.Builder
	b.WriteString("tensor<")
	for _, d := range t.Shape {
		if d == DynamicDim {
			b.WriteString("?x")
		} else {
			fmt.Fprintf(&b, "%dx", d)
		}
	}
	b.WriteString(t.Elem.String())
	b.WriteString(">")
	return b.String()
}

// Rank returns the number of dimensions.
func (t RankedTensorType) Rank() int { return len(t.Shape) }

// NumElements returns the total element count, or -1 if any dimension is
// dynamic.
func (t RankedTensorType) NumElements() int64 {
	n := int64(1)
	for _, d := range t.Shape {
		if d == DynamicDim {
			return -1
		}
		n *= d
	}
	return n
}

// TensorOf builds a ranked tensor type.
func TensorOf(elem Type, shape ...int64) RankedTensorType {
	return RankedTensorType{Shape: shape, Elem: elem}
}

// UnrankedTensorType is tensor<*xElem>.
type UnrankedTensorType struct {
	Elem Type
}

func (t UnrankedTensorType) isType()        {}
func (t UnrankedTensorType) String() string { return "tensor<*x" + t.Elem.String() + ">" }

// FunctionType is (ins) -> (outs).
type FunctionType struct {
	Inputs  []Type
	Results []Type
}

func (t FunctionType) isType() {}

func (t FunctionType) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, in := range t.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.String())
	}
	b.WriteString(") -> ")
	if len(t.Results) == 1 {
		b.WriteString(t.Results[0].String())
	} else {
		b.WriteString("(")
		for i, out := range t.Results {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(out.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// TupleType is tuple<a, b, ...>.
type TupleType struct {
	Elems []Type
}

func (t TupleType) isType() {}

func (t TupleType) String() string {
	var b strings.Builder
	b.WriteString("tuple<")
	for i, e := range t.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString(">")
	return b.String()
}

// ComplexType is complex<Elem>.
type ComplexType struct {
	Elem Type
}

func (t ComplexType) isType()        {}
func (t ComplexType) String() string { return "complex<" + t.Elem.String() + ">" }

// OpaqueType carries the textual form of a type this IR does not model
// structurally; it round-trips through parsing and printing unchanged.
type OpaqueType struct {
	// Text is the full type syntax, e.g. "!mydialect.mytype<3>".
	Text string
}

func (t OpaqueType) isType()        {}
func (t OpaqueType) String() string { return t.Text }

// IsIntOrIndex reports whether t is an integer or index type.
func IsIntOrIndex(t Type) bool {
	switch t.(type) {
	case IntegerType, IndexType:
		return true
	}
	return false
}

// IsFloat reports whether t is a float type.
func IsFloat(t Type) bool {
	_, ok := t.(FloatType)
	return ok
}

// IsShaped reports whether t has a shape (currently: ranked tensors).
func IsShaped(t Type) bool {
	_, ok := t.(RankedTensorType)
	return ok
}

// ElemTypeOf returns the element type of a shaped type, or t itself.
func ElemTypeOf(t Type) Type {
	switch s := t.(type) {
	case RankedTensorType:
		return s.Elem
	case UnrankedTensorType:
		return s.Elem
	}
	return t
}
