package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"dialegg/internal/dialegg"
	"dialegg/internal/obs"
	"dialegg/internal/obs/profile"
	"dialegg/internal/obs/telemetry"
)

// instruments is the server's Prometheus-facing metric set: live-updated
// gauges and counters (engine state, watchdog, slow requests) plus
// scrape-time bridges over the atomics in metrics and the memo cache's
// own accounting, so no value is tracked twice.
type instruments struct {
	engineIter      *telemetry.Gauge
	engineNodes     *telemetry.Gauge
	engineClasses   *telemetry.Gauge
	engineLiveRows  *telemetry.Gauge
	engineDeadRows  *telemetry.Gauge
	engineDeltaRows *telemetry.Gauge
	engineMatches   *telemetry.Gauge

	ruleMatched    *telemetry.Vec // egg_rule_matched_total{rule}
	ruleApplied    *telemetry.Vec // egg_rule_applied_total{rule}
	schedThrottled *telemetry.Vec // egg_scheduler_throttled_total{rule}
	schedLimited   *telemetry.Vec // egg_scheduler_limited_total{rule}

	watchdogTrips *telemetry.Counter
	slowRequests  *telemetry.Counter
}

// newInstruments registers every metric family on s.reg. Bridged values
// read the server's existing atomics (and cache.Stats()) at scrape time.
func newInstruments(s *Server) *instruments {
	reg := s.reg
	cf := func(name, help string, fn func() float64) { reg.NewCounterFunc(name, help, fn) }
	gf := func(name, help string, fn func() float64) { reg.NewGaugeFunc(name, help, fn) }
	u := func(v uint64) float64 { return float64(v) }

	cf("egg_requests_total", "Optimize requests accepted (past parsing).",
		func() float64 { return u(s.metrics.requests.Load()) })
	cf("egg_cache_hits_total", "Requests served from cache or a shared in-flight computation.",
		func() float64 { return u(s.metrics.hits.Load()) })
	cf("egg_cache_misses_total", "Requests that ran a fresh optimization.",
		func() float64 { return u(s.metrics.misses.Load()) })
	cf("egg_runs_total", "Saturation runs executed by the worker pool.",
		func() float64 { return u(s.metrics.runs.Load()) })
	cf("egg_errors_total", "Requests answered with an error status.",
		func() float64 { return u(s.metrics.errors.Load()) })
	cf("egg_canceled_total", "Requests whose client went away before completion.",
		func() float64 { return u(s.metrics.canceled.Load()) })
	cf("egg_stop_canceled_total", "Saturation runs stopped by context cancellation.",
		func() float64 { return u(s.metrics.stopCanceled.Load()) })
	cf("egg_queue_full_total", "Requests rejected because the job queue was full.",
		func() float64 { return u(s.metrics.queueFull.Load()) })

	gf("egg_inflight", "Optimizations executing right now.",
		func() float64 { return float64(s.metrics.inflight.Load()) })
	gf("egg_queue_depth", "Jobs waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	gf("egg_queue_cap", "Job queue capacity.",
		func() float64 { return float64(cap(s.queue)) })
	gf("egg_queue_age_seconds", "Age of the oldest queued job (0 when the queue is empty).",
		s.queueAges.oldestAge)
	gf("egg_workers", "Worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	gf("egg_draining", "1 while the server is draining, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	gf("egg_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	gf("egg_memo_entries", "Result-cache entries.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	gf("egg_memo_bytes", "Result-cache bytes in use.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	gf("egg_memo_max_bytes", "Result-cache byte budget.",
		func() float64 { return float64(s.cache.Stats().MaxBytes) })
	cf("egg_memo_hits_total", "Result-cache lookups that hit.",
		func() float64 { return u(s.cache.Stats().Hits) })
	cf("egg_memo_misses_total", "Result-cache lookups that missed.",
		func() float64 { return u(s.cache.Stats().Misses) })
	cf("egg_memo_evictions_total", "Result-cache entries evicted for space.",
		func() float64 { return u(s.cache.Stats().Evictions) })
	cf("egg_memo_rejected_total", "Result-cache adds rejected as larger than the budget.",
		func() float64 { return u(s.cache.Stats().Rejected) })

	gf("egg_flight_records", "Requests currently held by the flight recorder.",
		func() float64 { return float64(s.flight.Len()) })
	cf("egg_flight_total", "Requests ever recorded by the flight recorder.",
		func() float64 { return u(s.flight.Total()) })

	in := &instruments{
		engineIter: reg.NewGauge("egg_engine_iteration",
			"Saturation iteration most recently completed by any running job."),
		engineNodes: reg.NewGauge("egg_engine_nodes",
			"E-nodes after the most recent iteration."),
		engineClasses: reg.NewGauge("egg_engine_classes",
			"E-classes after the most recent iteration."),
		engineLiveRows: reg.NewGauge("egg_engine_live_rows",
			"Canonical database rows after the most recent iteration."),
		engineDeadRows: reg.NewGauge("egg_engine_dead_rows",
			"Stale (pre-congruence) rows after the most recent iteration."),
		engineDeltaRows: reg.NewGauge("egg_engine_delta_rows",
			"Delta-frontier rows the most recent iteration matched against."),
		engineMatches: reg.NewGauge("egg_engine_matches",
			"Matches applied in the most recent iteration."),
		ruleMatched: reg.NewCounterVec("egg_rule_matched_total",
			"Pattern matches found, by rewrite rule.", "rule"),
		ruleApplied: reg.NewCounterVec("egg_rule_applied_total",
			"Matches applied, by rewrite rule.", "rule"),
		schedThrottled: reg.NewCounterVec("egg_scheduler_throttled_total",
			"Iterations the rule scheduler skipped a rule (backoff or waste ban), by rule.", "rule"),
		schedLimited: reg.NewCounterVec("egg_scheduler_limited_total",
			"Iterations a scheduler cap truncated a rule's matches, by rule.", "rule"),
		watchdogTrips: reg.NewCounter("egg_watchdog_trips_total",
			"Requests flagged by the engine health watchdog."),
		slowRequests: reg.NewCounter("egg_slow_requests_total",
			"Requests slower than the slow-request threshold."),
	}

	bi := buildInfoLabels()
	reg.NewGaugeVec("egg_build_info",
		"Build metadata; value is always 1.",
		"goversion", "revision", "version").
		GaugeWith(bi.GoVersion, bi.Revision, bi.Version).Set(1)
	return in
}

// buildInfo is what /buildz serves and egg_build_info labels.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path"`
	Version   string `json:"version"`
	Revision  string `json:"revision"`
	Modified  bool   `json:"modified,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
}

// buildInfoLabels reads the binary's embedded build metadata. Fields the
// toolchain did not record (no VCS stamp in test binaries) are "unknown".
func buildInfoLabels() buildInfo {
	out := buildInfo{GoVersion: "unknown", Path: "unknown", Version: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	out.Path = bi.Main.Path
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			out.Revision = st.Value
		case "vcs.modified":
			out.Modified = st.Value == "true"
		case "vcs.time":
			out.BuildTime = st.Value
		}
	}
	return out
}

// queueAges tracks enqueue times FIFO so egg_queue_age_seconds can report
// how long the oldest queued job has been waiting — the leading indicator
// of a worker pool falling behind (queue depth says how many; age says
// how badly).
type queueAges struct {
	mu    sync.Mutex
	times []time.Time
}

func (q *queueAges) push(t time.Time) {
	q.mu.Lock()
	q.times = append(q.times, t)
	q.mu.Unlock()
}

// pop removes the oldest entry; tolerant of being empty (drain paths).
func (q *queueAges) pop() {
	q.mu.Lock()
	if len(q.times) > 0 {
		q.times = q.times[1:]
	}
	q.mu.Unlock()
}

func (q *queueAges) oldestAge() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.times) == 0 {
		return 0
	}
	return time.Since(q.times[0]).Seconds()
}

// requestObs is one request's observability context: its correlation ID,
// its private span recorder (what the flight recorder stores), and the
// watchdog's verdict. The singleflight leader's requestObs rides into the
// worker, so the engine's spans, journal stamps, and live gauges all
// carry the leader's ID.
type requestObs struct {
	id  string
	rec *obs.Recorder

	mu         sync.Mutex
	tripped    bool
	tripReason string
}

// trip marks the request watchdog-flagged; only the first call per
// request wins (and returns true), so the trip counter counts requests,
// not iterations.
func (o *requestObs) trip(reason string) bool {
	if o == nil {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.tripped {
		return false
	}
	o.tripped = true
	o.tripReason = reason
	return true
}

func (o *requestObs) tripState() (bool, string) {
	if o == nil {
		return false, ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tripped, o.tripReason
}

// reqIDKey carries the request ID through the handler context.
type reqIDKey struct{}

// newRequestID returns a fresh 16-hex-digit correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; a constant ID
		// beats a dead server.
		return "req-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// requestIDFrom returns the request ID the ingress middleware assigned.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the status code and body size for request logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// withRequestMeta is the ingress middleware: it assigns every request a
// correlation ID (honoring an inbound X-Request-Id so multi-hop callers
// keep one key end to end), echoes it on the response, and emits one
// structured log line per request — Info for /optimize, Warn when the
// request exceeded the slow threshold, Debug for scrape/health endpoints
// so steady-state Prometheus polling doesn't drown the log.
func (s *Server) withRequestMeta(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
		dur := time.Since(start)

		attrs := []any{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
			slog.Int("bytes", sw.bytes),
		}
		switch {
		case s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold && r.URL.Path == "/optimize":
			s.tel.slowRequests.Inc()
			s.logger.Warn("slow request", attrs...)
		case r.URL.Path == "/optimize":
			s.logger.Info("request", attrs...)
		default:
			s.logger.Debug("request", attrs...)
		}
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// handleBuildz serves build metadata plus uptime as JSON.
func (s *Server) handleBuildz(w http.ResponseWriter, _ *http.Request) {
	bi := buildInfoLabels()
	writeJSON(w, http.StatusOK, struct {
		buildInfo
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{bi, time.Since(s.start).Seconds()})
}

// flightSummary is one row of the /debugz/flightz listing.
type flightSummary struct {
	ID         string  `json:"id"`
	Start      string  `json:"start"`
	DurMS      float64 `json:"dur_ms"`
	Status     int     `json:"status"`
	Source     string  `json:"source"`
	Tripped    bool    `json:"tripped,omitempty"`
	TripReason string  `json:"trip_reason,omitempty"`
}

// handleFlightz serves the flight recorder: without ?id=, a JSON listing
// of the retained requests (oldest first); with ?id=<request id>, that
// request's span tree as Chrome trace-event JSON, loadable in any
// about:tracing-compatible viewer.
func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		fr := s.flight.Get(id)
		if fr == nil {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no flight record for request %q", id)})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", "flight-"+fr.ID+".trace.json"))
		_ = fr.WriteTrace(w)
		return
	}
	records := s.flight.Records()
	out := make([]flightSummary, 0, len(records))
	for _, fr := range records {
		out = append(out, flightSummary{
			ID:         fr.ID,
			Start:      fr.Start.UTC().Format(time.RFC3339Nano),
			DurMS:      float64(fr.Dur) / float64(time.Millisecond),
			Status:     fr.Status,
			Source:     fr.Source,
			Tripped:    fr.Tripped,
			TripReason: fr.TripReason,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Records []flightSummary `json:"records"`
		Total   uint64          `json:"total"`
	}{out, s.flight.Total()})
}

// profSlowEntry links one slow profiled job to its flight-recorder trace:
// the /debugz/profilez consumer jumps from a hot aggregate row straight to
// the span tree of a request that paid for it.
type profSlowEntry struct {
	ID      string  `json:"id"`
	DurMS   float64 `json:"dur_ms"`
	Flightz string  `json:"flightz"`
}

// maxProfSlow bounds the slow-request links /debugz/profilez retains.
const maxProfSlow = 16

// recordProfile folds one executed job's report into the server-wide
// aggregate profile and, when the job exceeded the slow threshold, links
// its request ID to the flight recorder. Called from runJob with
// Config.Profile set; partial reports (canceled runs) still merge so the
// aggregate accounts the work actually done.
func (s *Server) recordProfile(rep *dialegg.Report, ro *requestObs, dur time.Duration) {
	p := profile.FromRunReport(rep.Run, rep.Blame)
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof.Merge(p)
	if s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold && ro != nil && ro.id != "" {
		s.profSlow = append(s.profSlow, profSlowEntry{
			ID:      ro.id,
			DurMS:   float64(dur) / float64(time.Millisecond),
			Flightz: "/debugz/flightz?id=" + ro.id,
		})
		if len(s.profSlow) > maxProfSlow {
			s.profSlow = s.profSlow[len(s.profSlow)-maxProfSlow:]
		}
	}
}

// handleProfilez serves the live aggregate saturation profile: the merged
// profile artifact of every job executed since startup (same schema as
// egg-prof artifacts — the body of "profile" can be saved and fed to
// egg-prof blame/top/selectivity), plus links from recent slow requests
// to their flight-recorder traces.
func (s *Server) handleProfilez(w http.ResponseWriter, _ *http.Request) {
	if s.prof == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "profiling disabled (start egg-serve with -profile)"})
		return
	}
	s.profMu.Lock()
	body, err := json.Marshal(s.prof)
	slow := append([]profSlowEntry(nil), s.profSlow...)
	s.profMu.Unlock()
	if err != nil {
		s.failf(w, http.StatusInternalServerError, "encoding profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Profile      json.RawMessage `json:"profile"`
		SlowRequests []profSlowEntry `json:"slow_requests,omitempty"`
	}{body, slow})
}

// discardLogger is the default when Config.Logger is nil: structured
// logging off, zero formatting cost (handler is disabled at every level).
func discardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
