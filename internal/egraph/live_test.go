package egraph

// Tests for the live-gauge feed (RunConfig.Live) and request-ID
// correlation (RunConfig.RequestID): the telemetry substrate the serving
// layer's Prometheus gauges and engine health watchdog consume.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dialegg/internal/obs"
	"dialegg/internal/obs/journal"
)

// captureSink records every LiveIter delivery.
type captureSink struct {
	iters []LiveIterStats
	rules [][]LiveRuleStats
}

func (c *captureSink) LiveIter(st LiveIterStats, rules []LiveRuleStats) {
	c.iters = append(c.iters, st)
	// The runner reuses the rules buffer; copy per the interface contract.
	c.rules = append(c.rules, append([]LiveRuleStats(nil), rules...))
}

// TestLiveSinkMatchesReport: the live feed delivers one payload per
// iteration, in order, and its gauges agree with the final RunReport —
// the live view is the report, earlier.
func TestLiveSinkMatchesReport(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
	for i := 1; i < 40; i++ {
		leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
		prev, _ = g.Insert(l.Add, prev, leaf)
	}
	sink := &captureSink{}
	rep := g.Run([]*Rule{commRule(l.Add)}, RunConfig{IterLimit: 4, NodeLimit: 50_000, Workers: 2, Live: sink})

	if len(sink.iters) != rep.Iterations {
		t.Fatalf("live feed delivered %d payloads for %d iterations", len(sink.iters), rep.Iterations)
	}
	for i, st := range sink.iters {
		if st.Iter != i+1 {
			t.Errorf("payload %d: Iter = %d, want %d", i, st.Iter, i+1)
		}
		it := rep.PerIter[i]
		if st.Nodes != it.Nodes || st.Matches != it.Matches || st.DeltaRows != it.DeltaRows {
			t.Errorf("payload %d: nodes/matches/delta = %d/%d/%d, report says %d/%d/%d",
				i, st.Nodes, st.Matches, st.DeltaRows, it.Nodes, it.Matches, it.DeltaRows)
		}
		if st.Classes <= 0 || st.LiveRows <= 0 {
			t.Errorf("payload %d: classes %d / live rows %d not populated", i, st.Classes, st.LiveRows)
		}
	}
	// Final payload sizes the finished graph.
	last := sink.iters[len(sink.iters)-1]
	if last.Nodes != rep.Nodes {
		t.Errorf("last live nodes = %d, report nodes = %d", last.Nodes, rep.Nodes)
	}
	// Per-rule deltas: every payload names the comm rule with matched >=
	// applied > 0 until saturation.
	for i, rules := range sink.rules[:len(sink.rules)-1] {
		if len(rules) != 1 || rules[0].Name != "comm-Add" {
			t.Fatalf("payload %d rules = %+v", i, rules)
		}
		if rules[0].Applied <= 0 || rules[0].Matched < rules[0].Applied {
			t.Errorf("payload %d: matched/applied = %d/%d", i, rules[0].Matched, rules[0].Applied)
		}
	}
}

// TestLiveSinkDoesNotChangeResult: a run with a live sink attached is
// bit-identical to one without — the telemetry feed only observes.
func TestLiveSinkDoesNotChangeResult(t *testing.T) {
	build := func() (*exprLang, []*Rule) {
		l := newExprLangQuiet()
		g := l.g
		prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
		for i := 1; i < 60; i++ {
			leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
			prev, _ = g.Insert(l.Add, prev, leaf)
		}
		return l, []*Rule{commRule(l.Add)}
	}
	l1, rules1 := build()
	plain := l1.g.Run(rules1, RunConfig{IterLimit: 3, NodeLimit: 50_000, Workers: 2})
	l2, rules2 := build()
	observed := l2.g.Run(rules2, RunConfig{IterLimit: 3, NodeLimit: 50_000, Workers: 2, Live: &captureSink{}, RequestID: "req-x"})

	if plain.Iterations != observed.Iterations || plain.Nodes != observed.Nodes ||
		plain.Classes != observed.Classes || plain.Stop != observed.Stop {
		t.Fatalf("observed run diverged: %+v vs %+v", observed, plain)
	}
	b1, _ := json.Marshal(l1.g.Snapshot(0))
	b2, _ := json.Marshal(l2.g.Snapshot(0))
	if !bytes.Equal(b1, b2) {
		t.Fatal("live-observed run produced a different e-graph snapshot")
	}
}

// TestRequestIDCorrelation: a run with RequestID stamps the ID on every
// journal event it emits and labels the trace recorder with it.
func TestRequestIDCorrelation(t *testing.T) {
	const reqID = "req-0123456789abcdef"
	l := newExprLangQuiet()
	g := l.g
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf)
	g.SetJournal(jw, "live-test")
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	g.Insert(l.Add, a, b)

	rec := obs.NewRecorder()
	rep := g.Run([]*Rule{commRule(l.Add)}, RunConfig{IterLimit: 3, Workers: 1, RequestID: reqID, Recorder: rec})
	if !rep.Saturated() {
		t.Fatalf("stop = %s", rep.Stop)
	}
	g.SetJournal(nil, "")
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var inRun bool
	var runEvents, stamped int
	for _, ev := range events {
		switch ev.Kind {
		case journal.KRun:
			inRun = true
		}
		if inRun {
			runEvents++
			if ev.Req == reqID {
				stamped++
			} else {
				t.Errorf("event %s (iter %d) req = %q, want %q", ev.Kind, ev.Iter, ev.Req, reqID)
			}
		} else if ev.Req != "" {
			t.Errorf("pre-run event %s carries req %q", ev.Kind, ev.Req)
		}
		if ev.Kind == journal.KRunEnd {
			inRun = false
		}
	}
	if runEvents == 0 || stamped != runEvents {
		t.Fatalf("stamped %d of %d run events", stamped, runEvents)
	}

	if got := rec.Labels()["request_id"]; got != reqID {
		t.Errorf("recorder label = %q, want %q", got, reqID)
	}
	// The label survives into the Chrome trace, and the trace stays valid.
	var trace bytes.Buffer
	if err := rec.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(trace.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), reqID) {
		t.Error("trace does not carry the request ID")
	}

	// A journaled run with no RequestID stamps nothing.
	var buf2 bytes.Buffer
	jw2 := journal.NewWriter(&buf2)
	l2 := newExprLangQuiet()
	l2.g.SetJournal(jw2, "no-req")
	x, _ := l2.g.Insert(l2.Num, I64Value(l2.g.I64, 1))
	y, _ := l2.g.Insert(l2.Num, I64Value(l2.g.I64, 2))
	l2.g.Insert(l2.Add, x, y)
	l2.g.Run([]*Rule{commRule(l2.Add)}, RunConfig{IterLimit: 2, Workers: 1})
	if err := jw2.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), `"req"`) {
		t.Error("request-less run stamped req on journal events")
	}
}
