package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestStatzCountersUnderLoad drives the server from many concurrent
// clients — repeated requests for a few distinct modules plus a stream
// of invalid ones — while other goroutines poll /statz the whole time,
// then checks the final counters add up exactly:
//
//   - Requests counts only requests accepted past validation; every one
//     of them resolved to a hit or a miss.
//   - Runs equals the number of distinct modules: cache + singleflight
//     guarantee one saturation per content address no matter how many
//     clients ask.
//   - Errors counts the invalid requests, which never reach Requests.
//
// The mid-flight /statz polls assert the invariants that must hold at
// any instant; with -race this also proves the stats path is safe
// against the hot counters.
func TestStatzCountersUnderLoad(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, CacheBytes: 1 << 20})
	ctx := context.Background()

	const (
		distinct   = 3
		perModule  = 6
		badClients = 4
	)
	modules := make([]string, distinct)
	for i := range modules {
		// Distinct constants give distinct content addresses.
		modules[i] = fmt.Sprintf(`func.func @scale(%%x: i64) -> i64 {
  %%c = arith.constant %d : i64
  %%r = arith.divsi %%x, %%c : i64
  func.return %%r : i64
}
`, 1<<(i+3))
	}

	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
				}
				st, err := c.Stats(ctx)
				if err != nil {
					t.Errorf("mid-flight /statz: %v", err)
					return
				}
				if st.Hits+st.Misses > st.Requests {
					t.Errorf("hits %d + misses %d > requests %d", st.Hits, st.Misses, st.Requests)
				}
				if st.Inflight < 0 {
					t.Errorf("inflight gauge went negative: %d", st.Inflight)
				}
				if st.Cache.Bytes > st.Cache.MaxBytes {
					t.Errorf("cache bytes %d over budget %d", st.Cache.Bytes, st.Cache.MaxBytes)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for _, m := range modules {
		for i := 0; i < perModule; i++ {
			wg.Add(1)
			go func(m string) {
				defer wg.Done()
				resp, _, err := c.Optimize(ctx, &OptimizeRequest{MLIR: m, RuleSet: "imgconv"})
				if err != nil {
					t.Errorf("optimize: %v", err)
					return
				}
				if resp.MLIR == "" {
					t.Error("empty optimized module")
				}
			}(m)
		}
	}
	for i := 0; i < badClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Optimize(ctx, &OptimizeRequest{MLIR: "this is not mlir"})
			if err == nil {
				t.Error("invalid module was accepted")
			}
		}()
	}
	wg.Wait()
	close(stopPolling)
	pollWG.Wait()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const good = distinct * perModule
	if st.Requests != good {
		t.Errorf("requests = %d, want %d (invalid requests must not count)", st.Requests, good)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	// Runs is at least one per distinct module and at most a handful
	// more: a request can miss the cache, stall past the first flight's
	// completion, and lead a second run, but the overwhelming majority
	// must coalesce. Each successful run had a flight leader, so the
	// miss counter tracks it exactly.
	if st.Runs < distinct || st.Runs > distinct+2 {
		t.Errorf("runs = %d, want ~%d — cache+singleflight should cost about one run per distinct module", st.Runs, distinct)
	}
	if st.Misses != st.Runs {
		t.Errorf("misses = %d, want %d (one flight leader per successful run)", st.Misses, st.Runs)
	}
	if st.Errors != badClients {
		t.Errorf("errors = %d, want %d", st.Errors, badClients)
	}
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("idle server reports inflight %d, queue depth %d", st.Inflight, st.QueueDepth)
	}
	if st.Cache.Entries != distinct {
		t.Errorf("cache entries = %d, want %d", st.Cache.Entries, distinct)
	}
	if st.LatencyP50MS > st.LatencyP99MS {
		t.Errorf("p50 %.3fms > p99 %.3fms", st.LatencyP50MS, st.LatencyP99MS)
	}
}
