package dialects

import (
	"strings"
	"testing"

	"dialegg/internal/mlir"
)

const whileProgram = `
func.func @countdown(%n: i64) -> i64 {
  %zero = arith.constant 0 : i64
  %r = scf.while (%x = %n) : (i64) -> i64 {
    %cond = arith.cmpi sgt, %x, %zero : i64
    scf.condition(%cond) %x : i64
  } do {
  ^bb0(%y: i64):
    %one = arith.constant 1 : i64
    %next = arith.subi %y, %one : i64
    scf.yield %next : i64
  }
  func.return %r : i64
}`

func TestWhileRoundTrip(t *testing.T) {
	out := roundTrip(t, whileProgram)
	for _, want := range []string{"scf.while (", "scf.condition(", "do {", "^bb0("} {
		if !strings.Contains(out, want) {
			t.Errorf("printed while missing %q:\n%s", want, out)
		}
	}
}

func TestWhileVerifier(t *testing.T) {
	reg := NewRegistry()
	// A while whose before region does not end with scf.condition.
	bad := `
func.func @bad(%n: i64) -> i64 {
  %r = scf.while (%x = %n) : (i64) -> i64 {
    scf.yield %x : i64
  } do {
  ^bb0(%y: i64):
    scf.yield %y : i64
  }
  func.return %r : i64
}`
	m, err := mlir.ParseModule(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Verify(m.Op); err == nil {
		t.Error("verifier accepted while without scf.condition")
	}
}

func TestBlockHeaderScoping(t *testing.T) {
	// Names bound in a ^bb0 header must not leak outside the region.
	src := `
func.func @f(%n: i64) -> i64 {
  %zero = arith.constant 0 : i64
  %r = scf.while (%x = %n) : (i64) -> i64 {
    %cond = arith.cmpi sgt, %x, %zero : i64
    scf.condition(%cond) %x : i64
  } do {
  ^bb0(%y: i64):
    scf.yield %zero : i64
  }
  func.return %y : i64
}`
	if _, err := mlir.ParseModule(src, NewRegistry()); err == nil {
		t.Error("header-bound name used outside its region was accepted")
	}
}
