package egraph

import (
	"fmt"
)

// Prim is a primitive operation usable in rule premises and actions, such
// as i64 addition or log2. Apply returns false when the primitive does not
// apply (e.g. log2 of a non-power-of-two when the rule requires exactness).
type Prim struct {
	Name  string
	Apply func(g *EGraph, args []Value) (Value, bool)
}

// AtomKind discriminates pattern atoms.
type AtomKind uint8

// Atom kinds.
const (
	// AtomVar refers to a binding slot.
	AtomVar AtomKind = iota
	// AtomLit is a concrete value.
	AtomLit
)

// Atom is a flat pattern position: a variable slot or a literal value.
type Atom struct {
	Kind AtomKind
	Slot int
	Lit  Value
}

// VarAtom returns an atom referring to slot.
func VarAtom(slot int) Atom { return Atom{Kind: AtomVar, Slot: slot} }

// LitAtom returns an atom holding a concrete value.
func LitAtom(v Value) Atom { return Atom{Kind: AtomLit, Lit: v} }

// Premise is one conjunct of a rule query.
type Premise interface{ isPremise() }

// TablePremise matches a row f(Args...) = Out of f's table.
type TablePremise struct {
	Fn   *Function
	Args []Atom
	Out  Atom
}

func (*TablePremise) isPremise() {}

// EvalPremise computes Prim(Args...) — all argument variables must be bound
// by earlier premises — and unifies the result with Out.
type EvalPremise struct {
	Prim *Prim
	Args []Atom
	Out  Atom
}

func (*EvalPremise) isPremise() {}

// ATermKind discriminates action-term variants.
type ATermKind uint8

// Action-term kinds.
const (
	// AVar reads a binding slot.
	AVar ATermKind = iota
	// ALit is a concrete value.
	ALit
	// AApp applies a declared function (inserting an e-node for
	// constructors).
	AApp
	// APrim applies a primitive.
	APrim
	// AVec builds a vector value.
	AVec
)

// ATerm is a (possibly nested) term evaluated during rule application.
type ATerm struct {
	Kind    ATermKind
	Slot    int       // AVar
	Lit     Value     // ALit
	Fn      *Function // AApp
	Prim    *Prim     // APrim
	VecSort *Sort     // AVec
	Args    []*ATerm
}

// Action is one effect of a rule.
type Action interface{ isAction() }

// LetAction evaluates T and stores it in Slot for later actions.
type LetAction struct {
	Slot int
	T    *ATerm
}

func (*LetAction) isAction() {}

// UnionAction unifies the e-classes of A and B.
type UnionAction struct{ A, B *ATerm }

func (*UnionAction) isAction() {}

// SetAction writes Fn(Args...) = Out in a primitive-output table.
type SetAction struct {
	Fn   *Function
	Args []*ATerm
	Out  *ATerm
}

func (*SetAction) isAction() {}

// CostAction installs an extraction-cost override for the e-node
// Fn(Args...); this is the engine half of the paper's `unstable-cost`.
type CostAction struct {
	Fn   *Function
	Args []*ATerm
	Cost *ATerm
}

func (*CostAction) isAction() {}

// InsertAction evaluates T for its side effect (creating e-nodes).
type InsertAction struct{ T *ATerm }

func (*InsertAction) isAction() {}

// Rule is a compiled egglog rule: when all premises hold under some
// binding, run the actions under that binding.
type Rule struct {
	Name     string
	Premises []Premise
	Actions  []Action
	// NumSlots is the size of the binding array (query variables plus
	// action lets).
	NumSlots int
}

// bindings is the mutable state of one query execution.
type bindings struct {
	vals  []Value
	bound []bool
}

func newBindings(n int) *bindings {
	return &bindings{vals: make([]Value, n), bound: make([]bool, n)}
}

// match unifies an atom with a value; returns (undoSlot, ok) where
// undoSlot >= 0 means the slot was freshly bound and must be unbound on
// backtrack. Comparisons canonicalize both sides; fresh bindings keep the
// value as given, so matched rows contribute their original e-node
// identities (which proof production preserves into union justifications).
func (b *bindings) match(g *EGraph, a Atom, v Value) (int, bool) {
	switch a.Kind {
	case AtomVar:
		if b.bound[a.Slot] {
			return -1, g.Find(b.vals[a.Slot]).Bits == g.Find(v).Bits && b.vals[a.Slot].Sort == v.Sort
		}
		b.vals[a.Slot] = v
		b.bound[a.Slot] = true
		return a.Slot, true
	case AtomLit:
		return -1, a.Lit.Sort == v.Sort && g.Find(a.Lit).Bits == g.Find(v).Bits
	default:
		return -1, false
	}
}

func (b *bindings) get(g *EGraph, a Atom) (Value, bool) {
	switch a.Kind {
	case AtomVar:
		if !b.bound[a.Slot] {
			return Value{}, false
		}
		return g.Find(b.vals[a.Slot]), true
	case AtomLit:
		return g.Find(a.Lit), true
	default:
		return Value{}, false
	}
}

// Match runs the rule's query and calls yield with a snapshot of the
// bindings for every match. yield returning false stops the search.
func (g *EGraph) Match(r *Rule, yield func(binds []Value) bool) error {
	return g.MatchShard(r, 0, -1, yield)
}

// MatchShard runs the rule's query restricted to rows [lo, hi) of the
// first premise's table scan (hi < 0 means unrestricted). Partitioning
// [0, n) into contiguous ascending shards and concatenating their yields
// in shard order reproduces Match's sequence exactly, which is what makes
// the parallel match phase deterministic. First premises that do not scan
// — a fully-bound direct lookup, an indexed scan, or a primitive
// evaluation — run entirely in the shard with lo == 0 and yield nothing
// elsewhere.
func (g *EGraph) MatchShard(r *Rule, lo, hi int, yield func(binds []Value) bool) error {
	b := newBindings(r.NumSlots)
	err := g.matchFrom(r, 0, lo, hi, b, yield)
	if err == errStopMatch {
		return nil
	}
	return err
}

// FirstPremiseRows reports the scan length of the rule's first premise:
// the row count of its table for a TablePremise, 0 otherwise. The parallel
// runner uses it to decide how many shards a rule is worth.
func (g *EGraph) FirstPremiseRows(r *Rule) int {
	if len(r.Premises) == 0 {
		return 0
	}
	if p, ok := r.Premises[0].(*TablePremise); ok {
		return len(p.Fn.table.rows)
	}
	return 0
}

var errStopMatch = fmt.Errorf("egraph: match stopped")

// matchFrom continues the query at premise i. lo/hi restrict the scan of
// premise 0 only; recursive calls pass the unrestricted range.
func (g *EGraph) matchFrom(r *Rule, i, lo, hi int, b *bindings, yield func([]Value) bool) error {
	if i == len(r.Premises) {
		snap := make([]Value, len(b.vals))
		copy(snap, b.vals)
		if !yield(snap) {
			return errStopMatch
		}
		return nil
	}
	switch p := r.Premises[i].(type) {
	case *TablePremise:
		return g.matchTable(r, i, lo, hi, p, b, yield)
	case *EvalPremise:
		if lo > 0 {
			return nil // non-scan premise: handled wholly by the first shard
		}
		return g.matchEval(r, i, p, b, yield)
	default:
		return fmt.Errorf("egraph: unknown premise type %T", p)
	}
}

func (g *EGraph) matchTable(r *Rule, i, lo, hi int, p *TablePremise, b *bindings, yield func([]Value) bool) error {
	// Fast path: all argument atoms already determined — direct lookup.
	allBound := true
	for _, a := range p.Args {
		if a.Kind == AtomVar && !b.bound[a.Slot] {
			allBound = false
			break
		}
	}
	if allBound {
		if lo > 0 {
			return nil // single-lookup premise: first shard owns it
		}
		args := make([]Value, len(p.Args))
		for j, a := range p.Args {
			v, _ := b.get(g, a)
			args[j] = v
		}
		out, ok := g.LookupRaw(p.Fn, args...)
		if !ok {
			return nil
		}
		undo, ok := b.match(g, p.Out, out)
		if !ok {
			return nil
		}
		err := g.matchFrom(r, i+1, 0, -1, b, yield)
		if undo >= 0 {
			b.bound[undo] = false
		}
		return err
	}

	// General path: scan the table, or — when the graph is clean (rows
	// canonical) and some argument is already determined — only the rows
	// sharing that argument, via the per-position index. This turns the
	// two-premise joins of rules like matmul associativity from quadratic
	// scans into hash lookups.
	t := p.Fn.table
	var candidates []int32
	useIndex := false
	if g.Clean() {
		for j, a := range p.Args {
			v, ok := b.get(g, a)
			if !ok {
				continue
			}
			idx := t.buildArgIndex(j, len(p.Args))
			candidates = idx[v.Bits]
			useIndex = true
			break
		}
	}
	// Snapshot the current length: actions of other rules must not be
	// visible mid-match (the runner matches before applying, but Match is
	// also usable standalone).
	n := len(t.rows)
	start := 0
	if useIndex {
		if lo > 0 {
			return nil // indexed scan: first shard owns it
		}
		n = len(candidates)
	} else if hi >= 0 {
		start = lo
		if hi < n {
			n = hi
		}
	}
	var undos []int
rows:
	for k := start; k < n; k++ {
		ri := k
		if useIndex {
			ri = int(candidates[k])
		}
		row := &t.rows[ri]
		if row.dead {
			continue
		}
		undos = undos[:0]
		for j, a := range p.Args {
			undo, ok := b.match(g, a, g.Find(row.args[j]))
			if undo >= 0 {
				undos = append(undos, undo)
			}
			if !ok {
				for _, u := range undos {
					b.bound[u] = false
				}
				continue rows
			}
			_ = j
		}
		undo, ok := b.match(g, p.Out, row.out)
		if undo >= 0 {
			undos = append(undos, undo)
		}
		if ok {
			if err := g.matchFrom(r, i+1, 0, -1, b, yield); err != nil {
				for _, u := range undos {
					b.bound[u] = false
				}
				return err
			}
		}
		for _, u := range undos {
			b.bound[u] = false
		}
	}
	return nil
}

func (g *EGraph) matchEval(r *Rule, i int, p *EvalPremise, b *bindings, yield func([]Value) bool) error {
	args := make([]Value, len(p.Args))
	for j, a := range p.Args {
		v, ok := b.get(g, a)
		if !ok {
			return fmt.Errorf("egraph: rule %s: primitive %s argument %d unbound (premise ordering)", r.Name, p.Prim.Name, j)
		}
		args[j] = v
	}
	out, ok := p.Prim.Apply(g, args)
	if !ok {
		return nil // primitive did not apply; no match through this premise
	}
	undo, ok := b.match(g, p.Out, g.Find(out))
	if !ok {
		if undo >= 0 {
			b.bound[undo] = false
		}
		return nil
	}
	err := g.matchFrom(r, i+1, 0, -1, b, yield)
	if undo >= 0 {
		b.bound[undo] = false
	}
	return err
}

// EvalATerm evaluates an action term under the given bindings, inserting
// e-nodes for constructor applications.
func (g *EGraph) EvalATerm(t *ATerm, binds []Value) (Value, error) {
	switch t.Kind {
	case AVar:
		return g.Find(binds[t.Slot]), nil
	case ALit:
		return g.Find(t.Lit), nil
	case AApp:
		args := make([]Value, len(t.Args))
		for i, a := range t.Args {
			v, err := g.EvalATerm(a, binds)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return g.Insert(t.Fn, args...)
	case APrim:
		args := make([]Value, len(t.Args))
		for i, a := range t.Args {
			v, err := g.EvalATerm(a, binds)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		out, ok := t.Prim.Apply(g, args)
		if !ok {
			return Value{}, fmt.Errorf("egraph: primitive %s failed in action", t.Prim.Name)
		}
		return out, nil
	case AVec:
		elems := make([]Value, len(t.Args))
		for i, a := range t.Args {
			v, err := g.EvalATerm(a, binds)
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return g.InternVec(t.VecSort, elems), nil
	default:
		return Value{}, fmt.Errorf("egraph: unknown action term kind %d", t.Kind)
	}
}

// ApplyActions runs the rule's actions under one match's bindings.
func (g *EGraph) ApplyActions(r *Rule, binds []Value) error {
	for _, act := range r.Actions {
		switch a := act.(type) {
		case *LetAction:
			v, err := g.EvalATerm(a.T, binds)
			if err != nil {
				return err
			}
			binds[a.Slot] = v
		case *UnionAction:
			// Variable endpoints keep the matched row's original identity
			// (bindings are stored raw) so union justifications anchor at
			// the exact e-nodes the rule related.
			va, err := g.evalUnionEndpoint(a.A, binds)
			if err != nil {
				return err
			}
			vb, err := g.evalUnionEndpoint(a.B, binds)
			if err != nil {
				return err
			}
			if _, err := g.UnionWithReason(va, vb, Justification{Kind: "rule", Rule: r.Name}); err != nil {
				return fmt.Errorf("egraph: rule %s: %w", r.Name, err)
			}
		case *SetAction:
			args, err := g.evalATerms(a.Args, binds)
			if err != nil {
				return err
			}
			out, err := g.EvalATerm(a.Out, binds)
			if err != nil {
				return err
			}
			if err := g.Set(a.Fn, args, out); err != nil {
				return fmt.Errorf("egraph: rule %s: %w", r.Name, err)
			}
		case *CostAction:
			args, err := g.evalATerms(a.Args, binds)
			if err != nil {
				return err
			}
			cv, err := g.EvalATerm(a.Cost, binds)
			if err != nil {
				return err
			}
			if cv.Sort.Kind != KindI64 {
				return fmt.Errorf("egraph: rule %s: unstable-cost expects i64 cost, got %s", r.Name, cv.Sort)
			}
			if err := g.SetNodeCost(a.Fn, args, cv.AsI64()); err != nil {
				return fmt.Errorf("egraph: rule %s: %w", r.Name, err)
			}
		case *InsertAction:
			if _, err := g.EvalATerm(a.T, binds); err != nil {
				return err
			}
		default:
			return fmt.Errorf("egraph: unknown action type %T", act)
		}
	}
	return nil
}

func (g *EGraph) evalATerms(ts []*ATerm, binds []Value) ([]Value, error) {
	out := make([]Value, len(ts))
	for i, t := range ts {
		v, err := g.EvalATerm(t, binds)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalUnionEndpoint evaluates a union endpoint preserving the original
// e-node identity of plain variable references (EvalATerm canonicalizes,
// which is right everywhere else but would blur proof anchors).
func (g *EGraph) evalUnionEndpoint(t *ATerm, binds []Value) (Value, error) {
	if t.Kind == AVar {
		return binds[t.Slot], nil
	}
	return g.EvalATerm(t, binds)
}
