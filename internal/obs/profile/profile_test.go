package profile

// Tests for the profile artifact: canonical byte-identity across worker
// counts, agreement between the live (batch-delta) and journal
// (provenance) growth attribution, merge summation, schema linting, and
// the on-disk round trip.

import (
	"bytes"
	"path/filepath"
	"testing"

	"dialegg/internal/egraph"
	"dialegg/internal/obs/journal"
)

// chainWorkload builds an Add/Mul chain with commutativity rules — the
// same shape the egraph tests saturate — and returns the graph and rules.
func chainWorkload(t *testing.T, leaves int) (*egraph.EGraph, []*egraph.Rule) {
	t.Helper()
	g := egraph.New()
	expr, err := g.AddEqSort("Expr")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cost int64, params ...*egraph.Sort) *egraph.Function {
		f, err := g.DeclareFunction(&egraph.Function{Name: name, Params: params, Out: expr, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	num := mk("Num", 1, g.I64)
	add := mk("Add", 1, expr, expr)
	mul := mk("Mul", 2, expr, expr)
	prev, _ := g.Insert(num, egraph.I64Value(g.I64, 0))
	for i := 1; i < leaves; i++ {
		leaf, _ := g.Insert(num, egraph.I64Value(g.I64, int64(i)))
		prev, _ = g.Insert(add, prev, leaf)
	}
	comm := func(f *egraph.Function) *egraph.Rule {
		return &egraph.Rule{
			Name: "comm-" + f.Name,
			Premises: []egraph.Premise{
				&egraph.TablePremise{Fn: f, Args: []egraph.Atom{egraph.VarAtom(0), egraph.VarAtom(1)}, Out: egraph.VarAtom(2)},
			},
			Actions: []egraph.Action{
				&egraph.UnionAction{
					A: &egraph.ATerm{Kind: egraph.AVar, Slot: 2},
					B: &egraph.ATerm{Kind: egraph.AApp, Fn: f, Args: []*egraph.ATerm{{Kind: egraph.AVar, Slot: 1}, {Kind: egraph.AVar, Slot: 0}}},
				},
			},
			NumSlots: 3,
		}
	}
	return g, []*egraph.Rule{comm(add), comm(mul)}
}

func runProfile(t *testing.T, workers, shards int) *Profile {
	t.Helper()
	g, rules := chainWorkload(t, 40)
	rep := g.Run(rules, egraph.RunConfig{
		IterLimit:     4,
		Workers:       workers,
		MatchShards:   shards,
		RuleMetrics:   true,
		ProfileSample: 2,
	})
	return FromRunReport(rep, nil)
}

// TestCanonicalWorkerIndependent: the canonical artifact is byte-identical
// at every worker count — the determinism guarantee the perf-regression
// observatory diffs against.
func TestCanonicalWorkerIndependent(t *testing.T) {
	ref, err := runProfile(t, 1, 1).Canonical().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range [][2]int{{2, 2}, {4, 8}} {
		got, err := runProfile(t, cfg[0], cfg[1]).Canonical().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("canonical artifact differs at workers=%d shards=%d:\nref:\n%s\ngot:\n%s", cfg[0], cfg[1], ref, got)
		}
	}
}

// TestLiveVsJournalGrowth: the live batch-delta growth attribution and the
// journal's per-event provenance count the same rows and unions per rule.
func TestLiveVsJournalGrowth(t *testing.T) {
	var buf bytes.Buffer
	g, rules := chainWorkload(t, 30)
	w := journal.NewWriter(&buf)
	g.SetJournal(w, "profile-test")
	rep := g.Run(rules, egraph.RunConfig{IterLimit: 4, RuleMetrics: true})
	g.SetJournal(nil, "")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	live := FromRunReport(rep, nil)
	events, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	jp := FromJournal(events)
	if err := jp.Lint(); err != nil {
		t.Fatalf("journal-derived profile fails lint: %v", err)
	}

	liveBy := map[string]RuleProfile{}
	for _, rp := range live.Rules {
		liveBy[rp.Name] = rp
	}
	checked := 0
	for _, rp := range jp.Rules {
		if rp.Name == SeedRule {
			continue // live runs don't account pre-run inserts
		}
		lrp, ok := liveBy[rp.Name]
		if !ok {
			t.Errorf("journal rule %q missing from live profile", rp.Name)
			continue
		}
		if rp.RowsCreated != lrp.RowsCreated {
			t.Errorf("rule %s: journal rows_created %d != live %d", rp.Name, rp.RowsCreated, lrp.RowsCreated)
		}
		if rp.UnionsMade != lrp.UnionsMade {
			t.Errorf("rule %s: journal unions_made %d != live %d", rp.Name, rp.UnionsMade, lrp.UnionsMade)
		}
		if rp.Applied != lrp.Applied {
			t.Errorf("rule %s: journal applied %d != live %d", rp.Name, rp.Applied, lrp.Applied)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rules compared")
	}
	if jp.Iterations != rep.Iterations {
		t.Errorf("journal iterations %d != report %d", jp.Iterations, rep.Iterations)
	}
}

// TestMergeSums: merging a profile into itself doubles every counter and
// keeps canonical order.
func TestMergeSums(t *testing.T) {
	p := runProfile(t, 2, 2)
	q := runProfile(t, 2, 2)
	before := append([]RuleProfile(nil), p.Rules...)
	p.Merge(q)
	if err := p.Lint(); err != nil {
		t.Fatalf("merged profile fails lint: %v", err)
	}
	if p.Runs != 2 {
		t.Errorf("runs = %d, want 2", p.Runs)
	}
	for i, rp := range p.Rules {
		if rp.Matched != 2*before[i].Matched || rp.RowsCreated != 2*before[i].RowsCreated {
			t.Errorf("rule %s: merge did not double counters", rp.Name)
		}
	}
	if p.Timing == nil || p.Timing.ElapsedNS <= 0 {
		t.Error("merge dropped timing")
	}
}

// TestLintViolations: each schema violation is rejected.
func TestLintViolations(t *testing.T) {
	base := func() *Profile {
		p := New()
		p.Runs = 1
		p.Rules = []RuleProfile{{Name: "a", Matched: 2, Applied: 2}, {Name: "b"}}
		p.Blame = []egraph.BlameRow{{Rule: "a", Rows: 2, Extracted: 1, Waste: 1, WasteRatio: 0.5}}
		return p
	}
	if err := base().Lint(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := map[string]func(*Profile){
		"bad schema":      func(p *Profile) { p.Schema = "nope" },
		"unsorted rules":  func(p *Profile) { p.Rules[0], p.Rules[1] = p.Rules[1], p.Rules[0] },
		"duplicate rules": func(p *Profile) { p.Rules[1].Name = "a" },
		"applied>matched": func(p *Profile) { p.Rules[0].Applied = 3 },
		"blame sum":       func(p *Profile) { p.Blame[0].Waste = 5 },
		"ratio range":     func(p *Profile) { p.Blame[0].WasteRatio = 1.5 },
		"negative rows":   func(p *Profile) { p.Rules[0].RowsScanned = -1 },
	}
	for name, mutate := range cases {
		p := base()
		mutate(p)
		if err := p.Lint(); err == nil {
			t.Errorf("%s: lint accepted invalid profile", name)
		}
	}
}

// TestRoundTrip: Write then ReadFile reproduces the artifact and the
// formatting entry points render it without panicking.
func TestRoundTrip(t *testing.T) {
	p := runProfile(t, 2, 4)
	p.Blame = []egraph.BlameRow{{Rule: "comm-Add", Rows: 4, Extracted: 1, Rejected: 2, Waste: 1, WasteRatio: 0.25}}
	p.normalize()
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Write(path); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := p.Encode()
	qb, _ := q.Encode()
	if !bytes.Equal(pb, qb) {
		t.Error("round trip changed the artifact")
	}
	for name, s := range map[string]string{
		"top":         q.FormatTop(5),
		"blame":       q.FormatBlame(),
		"selectivity": q.FormatSelectivity(),
	} {
		if s == "" {
			t.Errorf("%s report is empty", name)
		}
	}
}
