// egg-fuzz corpus entry
// bundle: poly
// expect: pass
// note: quadratic in expanded form; Horner reassociation changes rounding, covered by the poly tolerance (rel 1e-6, abs 1e-9)
func.func @p(%x: f64, %a: f64, %b: f64) -> f64 {
  %x2 = arith.mulf %x, %x : f64
  %t0 = arith.mulf %a, %x2 : f64
  %t1 = arith.mulf %b, %x : f64
  %s = arith.addf %t0, %t1 : f64
  func.return %s : f64
}
