package egraph

// Tests for the saturation runner's parallel match phase: worker-count
// determinism, stats accounting, and the snapshot/canonicalization safety
// properties the match phase depends on.

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// commRule returns f(x, y) = r => union(r, f(y, x)).
func commRule(f *Function) *Rule {
	return &Rule{
		Name: "comm-" + f.Name,
		Premises: []Premise{
			&TablePremise{Fn: f, Args: []Atom{VarAtom(0), VarAtom(1)}, Out: VarAtom(2)},
		},
		Actions: []Action{
			&UnionAction{
				A: &ATerm{Kind: AVar, Slot: 2},
				B: &ATerm{Kind: AApp, Fn: f, Args: []*ATerm{{Kind: AVar, Slot: 1}, {Kind: AVar, Slot: 0}}},
			},
		},
		NumSlots: 3,
	}
}

// TestRunWorkersDeterministic: the same graph saturated with 1, 2, and 8
// workers reports identical iteration counts, nodes, classes, and unions.
func TestRunWorkersDeterministic(t *testing.T) {
	build := func() (*exprLang, []*Rule) {
		l := newExprLangQuiet()
		g := l.g
		prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
		for i := 1; i < 200; i++ {
			leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
			prev, _ = g.Insert(l.Add, prev, leaf)
		}
		return l, []*Rule{commRule(l.Add), commRule(l.Mul)}
	}

	type outcome struct {
		iters, nodes, classes int
		unions                uint64
		stop                  StopReason
	}
	run := func(workers int) outcome {
		l, rules := build()
		rep := l.g.Run(rules, RunConfig{IterLimit: 4, NodeLimit: 50_000, Workers: workers})
		if rep.Workers != workers {
			t.Fatalf("report workers = %d, want %d", rep.Workers, workers)
		}
		return outcome{rep.Iterations, rep.Nodes, rep.Classes, l.g.UnionCount(), rep.Stop}
	}

	want := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != want {
			t.Errorf("workers=%d: %+v, want (serial) %+v", w, got, want)
		}
	}
}

// TestRunStats: the per-iteration stats struct accounts matches, unions,
// and phase times (naive mode, where every iteration re-matches the full
// database; semi-naive accounting is covered by TestRunStatsSemiNaive).
func TestRunStats(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	g.Insert(l.Add, a, b)
	rep := g.Run([]*Rule{commRule(l.Add)}, RunConfig{IterLimit: 3, Workers: 2, Naive: true})
	if !rep.Saturated() {
		t.Fatalf("stop = %s, want saturated", rep.Stop)
	}
	if len(rep.PerIter) != rep.Iterations {
		t.Fatalf("PerIter entries = %d, iterations = %d", len(rep.PerIter), rep.Iterations)
	}
	// Iteration 1 matches Add(a,b) and unions in the flipped Add(b,a).
	if rep.PerIter[0].Matches != 1 || rep.PerIter[0].Unions != 1 {
		t.Errorf("iter 1 stats = %+v", rep.PerIter[0])
	}
	// Iteration 2 matches both orientations; everything is already equal.
	if rep.PerIter[1].Matches != 2 || rep.PerIter[1].Unions != 0 {
		t.Errorf("iter 2 stats = %+v", rep.PerIter[1])
	}
	if rep.PerIter[1].RebuildPasses < 1 {
		t.Errorf("iter 2 rebuild passes = %d, want >= 1", rep.PerIter[1].RebuildPasses)
	}
	var m, ap, rb time.Duration
	for _, it := range rep.PerIter {
		m += it.MatchTime
		ap += it.ApplyTime
		rb += it.RebuildTime
	}
	if m != rep.MatchTime || ap != rep.ApplyTime || rb != rep.RebuildTime {
		t.Errorf("aggregate times (%v %v %v) != per-iter sums (%v %v %v)",
			rep.MatchTime, rep.ApplyTime, rep.RebuildTime, m, ap, rb)
	}
}

// TestRunStatsSemiNaive: from the second iteration on, the default run
// mode matches only the delta — iteration 2 re-examines the one row the
// first iteration inserted (the flipped Add), not the whole database,
// and the run still saturates at the same iteration with the same graph.
func TestRunStatsSemiNaive(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	g.Insert(l.Add, a, b)
	rep := g.Run([]*Rule{commRule(l.Add)}, RunConfig{IterLimit: 3, Workers: 2})
	if !rep.Saturated() {
		t.Fatalf("stop = %s, want saturated", rep.Stop)
	}
	if rep.PerIter[0].SemiNaive {
		t.Errorf("iteration 1 must be a full match, got SemiNaive=true")
	}
	if rep.PerIter[0].Matches != 1 || rep.PerIter[0].Unions != 1 {
		t.Errorf("iter 1 stats = %+v", rep.PerIter[0])
	}
	it2 := rep.PerIter[1]
	if !it2.SemiNaive {
		t.Fatalf("iteration 2 should be semi-naive: %+v", it2)
	}
	// The delta after iteration 1 is the inserted Add(b,a) row plus the
	// re-merged originals touched by rebuild; only the flipped orientation
	// is a new match, and applying it unions nothing new.
	if it2.Matches != 1 || it2.Unions != 0 {
		t.Errorf("iter 2 stats = %+v", it2)
	}
	if it2.DeltaRows == 0 {
		t.Errorf("iter 2 delta rows = 0, want > 0")
	}
	// On this tiny graph the delta (one row) is as big as the full scan
	// would be; the strictly-fewer property is asserted on the bench
	// workloads. Here only accounting matters: the delta scan is counted.
	if it2.RowsScanned == 0 {
		t.Errorf("iter 2 rows scanned = 0, want > 0")
	}
	var scanned int64
	for _, it := range rep.PerIter {
		scanned += it.RowsScanned
	}
	if scanned != rep.RowsScanned {
		t.Errorf("aggregate rows scanned %d != per-iter sum %d", rep.RowsScanned, scanned)
	}
}

// TestMidIterationUnionInvalidatesCachedCanon is the regression test for
// the apply phase's staleness hazard: matches are collected against the
// iteration-start snapshot, so by the time a later match is applied, an
// earlier apply may have unioned away the canonical ID its bindings
// cached. ApplyActions must re-canonicalize through Find rather than
// trust the cached IDs.
func TestMidIterationUnionInvalidatesCachedCanon(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	x, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	y, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	sum, _ := g.Insert(l.Add, x, y)
	g.Rebuild()

	// Collect the match of comm(Add) against the frozen snapshot.
	r := commRule(l.Add)
	var cached [][]Value
	if err := g.Match(r, func(binds []Value) bool {
		cached = append(cached, binds)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(cached) != 1 {
		t.Fatalf("matches = %d, want 1", len(cached))
	}

	// A mid-iteration union (as an earlier rule's apply would perform)
	// makes the cached binding for x non-canonical.
	if _, err := g.Union(x, y); err != nil {
		t.Fatal(err)
	}
	if g.Find(x).Bits == x.Bits && g.Find(y).Bits == y.Bits {
		t.Fatal("union did not change any canonical ID; test is vacuous")
	}

	// Applying the stale match must still work and land Add(y, x) in
	// sum's class.
	if err := g.ApplyActions(r, cached[0]); err != nil {
		t.Fatal(err)
	}
	g.Rebuild()
	flipped, err := g.Insert(l.Add, g.Find(y), g.Find(x))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Eq(flipped, sum) {
		t.Error("Add(y, x) not unioned with Add(x, y) after stale apply")
	}
	checkCongruenceInvariants(t, g)
}

// TestConcurrentFindDuringMatch hammers the reads the parallel match
// phase performs — Find (with its path-halving writes), table scans, and
// pool interning — from many goroutines against a frozen graph. Run with
// -race this is the regression test for snapshot safety of the shared
// structures.
func TestConcurrentFindDuringMatch(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	var vals []Value
	prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
	vals = append(vals, prev)
	for i := 1; i < 500; i++ {
		leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
		prev, _ = g.Insert(l.Mul, prev, leaf)
		vals = append(vals, prev, leaf)
	}
	// Deep union chains so Find has real halving work to race on.
	for i := 0; i+4 < len(vals); i += 5 {
		g.Union(vals[i], vals[i+4])
	}
	g.Rebuild()

	r := &Rule{
		Name: "join",
		Premises: []Premise{
			&TablePremise{Fn: l.Mul, Args: []Atom{VarAtom(0), VarAtom(1)}, Out: VarAtom(2)},
			&TablePremise{Fn: l.Mul, Args: []Atom{VarAtom(2), VarAtom(3)}, Out: VarAtom(4)},
		},
		NumSlots: 5,
	}
	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0: // e-matching
				_ = g.Match(r, func([]Value) bool { counts[w]++; return true })
			case 1: // raw canonicalization
				for _, v := range vals {
					_ = g.Find(v)
				}
				counts[w] = 1
			default: // pool interning (string prims do this mid-match)
				g.InternString("shared")
				g.InternVec(g.VecSortOf(g.I64), []Value{I64Value(g.I64, int64(w))})
				counts[w] = 1
			}
		}(w)
	}
	wg.Wait()
	want := -1
	for w := 0; w < workers; w += 3 {
		if want == -1 {
			want = counts[w]
		} else if counts[w] != want {
			t.Fatalf("concurrent matchers disagree: %d vs %d matches", counts[w], want)
		}
	}
	if want <= 0 {
		t.Fatal("join rule found no matches")
	}
}
