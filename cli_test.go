package dialegg_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

const cliProgram = `
func.func @scale(%x: i64) -> i64 {
  %c256 = arith.constant 256 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}
`

// TestEggOptCLI drives the egg-opt binary end to end: bundled rules,
// custom rule files, --emit-egg, and the canonicalize flag.
func TestEggOptCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := buildTool(t, "egg-opt")
	dir := t.TempDir()
	mlirPath := filepath.Join(dir, "prog.mlir")
	if err := os.WriteFile(mlirPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-rules", "imgconv", mlirPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egg-opt: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "arith.shrsi") || strings.Contains(string(out), "arith.divsi") {
		t.Errorf("division not rewritten:\n%s", out)
	}

	// --emit-egg shows the translation.
	out, err = exec.Command(bin, "-rules", "imgconv", "-emit-egg", mlirPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egg-opt -emit-egg: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "(arith_divsi") || !strings.Contains(string(out), "(Value 0 (I64))") {
		t.Errorf("emit-egg output unexpected:\n%s", out)
	}

	// A user-supplied rule file via -egg.
	eggPath := filepath.Join(dir, "my.egg")
	ruleText := `
(function arith_constant (AttrPair Type) Op :cost 10)
(function arith_divsi (Op Op Type) Op :cost 180)
(function arith_shrsi (Op Op Type) Op :cost 10)
(rule ((= ?lhs (arith_divsi ?x (arith_constant (NamedAttr "value" (IntegerAttr ?n ?t)) ?t) ?t))
       (= ?k (log2 ?n)) (= ?n (<< 1 ?k)))
      ((union ?lhs (arith_shrsi ?x (arith_constant (NamedAttr "value" (IntegerAttr ?k ?t)) ?t) ?t))))
`
	if err := os.WriteFile(eggPath, []byte(ruleText), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-egg", eggPath, "-canonicalize", mlirPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egg-opt -egg: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "arith.shrsi") {
		t.Errorf("custom rule file did not apply:\n%s", out)
	}

	// Bad input reports a non-zero exit.
	if err := exec.Command(bin, "-rules", "nope", mlirPath).Run(); err == nil {
		t.Error("unknown rule set accepted")
	}
}

// TestMLIRRunCLI drives the interpreter binary.
func TestMLIRRunCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := buildTool(t, "mlir-run")
	dir := t.TempDir()
	mlirPath := filepath.Join(dir, "prog.mlir")
	if err := os.WriteFile(mlirPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-fn", "scale", "-int-args", "1024", "-counts", mlirPath).CombinedOutput()
	if err != nil {
		t.Fatalf("mlir-run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "result[0] = 4") {
		t.Errorf("1024/256 should be 4:\n%s", s)
	}
	if !strings.Contains(s, "cycles = ") || !strings.Contains(s, "arith.divsi") {
		t.Errorf("missing cycle/count report:\n%s", s)
	}
}

// TestEgglogCLI drives the standalone egglog interpreter.
func TestEgglogCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := buildTool(t, "egglog")
	dir := t.TempDir()
	eggPath := filepath.Join(dir, "fig1.egg")
	prog := `
(sort Expr)
(function Num (i64) Expr :cost 1)
(function Var (String) Expr :cost 1)
(function Mul (Expr Expr) Expr :cost 2)
(function Div (Expr Expr) Expr :cost 2)
(function Shl (Expr Expr) Expr :cost 1)
(rewrite (Div ?x ?x) (Num 1))
(rewrite (Mul ?x (Num 1)) ?x)
(rewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))
(rewrite (Div (Mul ?x ?y) ?z) (Mul ?x (Div ?y ?z)))
(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(run 20)
(check (= expr (Var "a")))
(extract expr)
`
	if err := os.WriteFile(eggPath, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	dotPath := filepath.Join(dir, "g.dot")
	out, err := exec.Command(bin, "-dot", dotPath, eggPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egglog: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, `(Var "a") ; cost 1`) {
		t.Errorf("extraction output wrong:\n%s", s)
	}
	if !strings.Contains(s, "check passed") {
		t.Errorf("check output missing:\n%s", s)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph egraph") || !strings.Contains(string(dot), "cluster_") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}

// TestBenchtabCLI smoke-tests the table regenerator on Table 1 only (the
// cheap path).
func TestBenchtabCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := buildTool(t, "benchtab")
	out, err := exec.Command(bin, "-table1").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab: %v\n%s", err, out)
	}
	for _, want := range []string{"Img Conv", "2MM", "linalg"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}
