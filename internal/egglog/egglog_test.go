package egglog

import (
	"strings"
	"testing"

	"dialegg/internal/egraph"
	"dialegg/internal/sexp"
)

func mustExec(t *testing.T, p *Program, src string) []Result {
	t.Helper()
	res, err := p.ExecuteString(src)
	if err != nil {
		t.Fatalf("ExecuteString failed: %v\nsource:\n%s", err, src)
	}
	return res
}

// exprPrelude is the §2.3 arithmetic language from the paper.
const exprPrelude = `
(sort Expr)
(function Num (i64) Expr :cost 1)
(function Var (String) Expr :cost 1)
(function Add (Expr Expr) Expr :cost 1)
(function Mul (Expr Expr) Expr :cost 2)
(function Div (Expr Expr) Expr :cost 2)
(function Shl (Expr Expr) Expr :cost 1)
`

// paperRules are the §2.2 rewrite rules in egglog syntax (§2.3).
const paperRules = `
(rewrite (Div ?x ?x) (Num 1)) ; x / x => 1
(rewrite (Mul ?x (Num 1)) ?x) ; x * 1 => x
(rewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))
(rewrite (Div (Mul ?x ?y) ?z) (Mul ?x (Div ?y ?z)))
`

func TestDeclarations(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude)
	f, ok := p.Graph().FunctionByName("Mul")
	if !ok {
		t.Fatal("Mul not declared")
	}
	if f.Cost != 2 || f.Arity() != 2 {
		t.Errorf("Mul cost=%d arity=%d", f.Cost, f.Arity())
	}
}

func TestLetAndExtractLiteralTerm(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude)
	res := mustExec(t, p, `
(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(extract expr)
`)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	want := `(Div (Mul (Var "a") (Num 2)) (Num 2))`
	if got := res[0].Term.String(); got != want {
		t.Errorf("extract = %s, want %s", got, want)
	}
	// Cost: Div 2 + Mul 2 + Var 1 + Num 1 + Num 1 = 7.
	if res[0].Cost != 7 {
		t.Errorf("cost = %d, want 7", res[0].Cost)
	}
}

// TestFigure1EndToEnd runs the complete §2.2/§2.3 example through surface
// syntax: saturating (a*2)/2 and extracting just `a`.
func TestFigure1EndToEnd(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+paperRules)
	res := mustExec(t, p, `
(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(run 20)
(check (= expr (Var "a")))
(extract expr)
`)
	last := res[len(res)-1]
	if got := last.Term.String(); got != `(Var "a")` {
		t.Errorf("extract = %s, want (Var \"a\")", got)
	}
	run := res[0]
	if run.Command != "run" || !run.Report.Saturated() {
		t.Errorf("run did not saturate: %+v", run.Report)
	}
	// The e-graph must contain the a<<1 alternative (Figure 1's lighter
	// nodes).
	holds, err := p.Check(mustParseFacts(t, `(= (Mul (Var "a") (Num 2)) (Shl (Var "a") (Num 1)))`))
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("a*2 and a<<1 not unified")
	}
}

func mustParseFacts(t *testing.T, src string) []*sexp.Node {
	t.Helper()
	nodes, err := sexp.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestCheckFails(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude)
	mustExec(t, p, `(let a (Num 1)) (let b (Num 2))`)
	if _, err := p.ExecuteString(`(check (= a b))`); err == nil {
		t.Error("check of false fact should error")
	}
	mustExec(t, p, `(union a b) (check (= a b))`)
}

func TestBirewrite(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(birewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))
(let e (Shl (Var "v") (Num 1)))
(run 5)
(check (= e (Mul (Var "v") (Num 2))))
`)
}

// TestConditionalRewriteWhen exercises :when clauses with primitive guards.
func TestConditionalRewriteWhen(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
; divide by power of two becomes shift right (modelled as Div->Shl here)
(rewrite (Div ?x (Num ?n)) (Shl ?x (Num ?k))
  :when ((= ?k (log2 ?n)) (= ?n (<< 1 ?k))))
(let yes (Div (Var "a") (Num 256)))
(let no  (Div (Var "b") (Num 100)))
(run 5)
(check (= yes (Shl (Var "a") (Num 8))))
`)
	holds, err := p.Check(mustParseFacts(t, `(= no (Shl (Var "b") (Num ?k)))`))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("non-power-of-two division must not be rewritten")
	}
}

// TestRuleWithComputation: constant folding in the style of §7.1.
func TestRuleWithComputation(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(rewrite (Add (Num ?x) (Num ?y)) (Num (+ ?x ?y)))
(let e (Add (Num 2) (Num 3)))
(run 5)
(check (= e (Num 5)))
(extract e)
`)
	res, _ := p.ExecuteString(`(extract e)`)
	if got := res[0].Term.String(); got != "(Num 5)" {
		t.Errorf("extract = %s, want (Num 5)", got)
	}
}

// TestRecursivePow reproduces §7.5's recursive exponentiation expansion on
// a simplified language: Pow(x, Num n) = Mul(x, Pow(x, n-1)), Pow(x,0)=1.
func TestRecursivePow(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(function Pow (Expr Expr) Expr :cost 50)
(rule ((= ?lhs (Pow ?x (Num ?n))) (>= ?n 1))
      ((union ?lhs (Mul ?x (Pow ?x (Num (- ?n 1)))))))
(rewrite (Pow ?x (Num 0)) (Num 1))
(rewrite (Mul ?x (Num 1)) ?x)
(rewrite (Mul (Num 1) ?x) ?x)
(let e (Pow (Var "x") (Num 3)))
(run 10)
(extract e)
`)
	res, _ := p.ExecuteString(`(extract e)`)
	got := res[0].Term.String()
	// x^3 should extract as x*(x*x) (Mul cost 2 each = 6+leaves < Pow 50).
	if strings.Contains(got, "Pow") {
		t.Errorf("extract still contains Pow: %s", got)
	}
	if strings.Count(got, "Mul") != 2 {
		t.Errorf("expected 2 Muls in %s", got)
	}
}

// TestPrimitiveFunctionTable: analysis tables in the style of listing 6
// (nrows/ncols over tensor types).
func TestPrimitiveFunctionTable(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort Type)
(sort IntVec (Vec i64))
(function RankedTensor (IntVec Type) Type)
(function F32 () Type)
(function nrows (Type) i64)
(function ncols (Type) i64)
(rule ((= ?t (RankedTensor ?shape ?)))
      ((set (nrows ?t) (vec-get ?shape 0))
       (set (ncols ?t) (vec-get ?shape 1))))
(let t1 (RankedTensor (vec-of 2 3) (F32)))
(run 3)
`)
	g := p.Graph()
	nrows, _ := g.FunctionByName("nrows")
	ncols, _ := g.FunctionByName("ncols")
	t1, _ := p.LookupLet("t1")
	r, ok := g.Lookup(nrows, t1)
	if !ok || r.AsI64() != 2 {
		t.Errorf("nrows = %v,%v want 2", r.AsI64(), ok)
	}
	cv, ok := g.Lookup(ncols, t1)
	if !ok || cv.AsI64() != 3 {
		t.Errorf("ncols = %v,%v want 3", cv.AsI64(), ok)
	}
}

// TestUnstableCost reproduces listing 5: a rule computes a data-dependent
// cost for matmul nodes and extraction respects it.
func TestUnstableCost(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort Type)
(sort Op)
(sort IntVec (Vec i64))
(function RankedTensor (IntVec Type) Type)
(function F32 () Type)
(function Matrix (String Type) Op)
(function MatMul (Op Op Type) Op)
(function type-of (Op) Type)
(function nrows (Type) i64)
(function ncols (Type) i64)
(rule ((= ?t (RankedTensor ?shape ?)))
      ((set (nrows ?t) (vec-get ?shape 0))
       (set (ncols ?t) (vec-get ?shape 1))))
(rule ((= ?m (Matrix ?name ?t))) ((set (type-of ?m) ?t)))
(rule ((= ?m (MatMul ?x ?y ?t))) ((set (type-of ?m) ?t)))
(rule ((= ?m (MatMul ?x ?y (RankedTensor ?d ?t)))
       (= ?a (nrows (type-of ?x)))
       (= ?b (ncols (type-of ?x)))
       (= ?c (ncols (type-of ?y))))
      ((unstable-cost (MatMul ?x ?y (RankedTensor ?d ?t)) (* (* ?a ?b) ?c))))
; associativity: (XY)Z = X(YZ)
(rule ((= ?lhs (MatMul (MatMul ?x ?y ?xy_t) ?z ?xyz_t))
       (= ?b (nrows (type-of ?y)))
       (= ?d (ncols (type-of ?z)))
       (= ?xyz_t (RankedTensor ?dim ?t)))
      ((let yz_t (RankedTensor (vec-of ?b ?d) ?t))
       (union ?lhs (MatMul ?x (MatMul ?y ?z yz_t) ?xyz_t))))
; X: 10x100, Y: 100x100, Z: 100x2 -- paper's §7.4 shape story:
; (XY)Z costs 10*100*100 + 10*100*2 = 102,000
; X(YZ) costs 100*100*2 + 10*100*2 = 22,000
(let X (Matrix "X" (RankedTensor (vec-of 10 100) (F32))))
(let Y (Matrix "Y" (RankedTensor (vec-of 100 100) (F32))))
(let Z (Matrix "Z" (RankedTensor (vec-of 100 2) (F32))))
(let XY (MatMul X Y (RankedTensor (vec-of 10 100) (F32))))
(let XYZ (MatMul XY Z (RankedTensor (vec-of 10 2) (F32))))
(run 10)
(extract XYZ)
`)
	res, err := p.ExecuteString(`(extract XYZ)`)
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].Term.String()
	// The cheap association multiplies Y and Z first.
	if !strings.Contains(got, `(MatMul (Matrix "Y"`) {
		t.Errorf("extraction did not reassociate to X(YZ): %s", got)
	}
	if !strings.HasPrefix(got, `(MatMul (Matrix "X"`) {
		t.Errorf("outer matmul should multiply X by (YZ): %s", got)
	}
}

// TestTopLevelRelationFact: a bare relation application at the top level
// is a fact command populating the database.
func TestTopLevelRelationFact(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort E)
(function mk (i64) E)
(relation edge (E E))
(edge (mk 1) (mk 2))
(check (edge (mk 1) (mk 2)))
`)
}

func TestRelationFactsViaRules(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort E)
(function mk (i64) E)
(relation edge (E E))
(relation path (E E))
(rule ((edge ?a ?b)) ((path ?a ?b)))
(rule ((path ?a ?b) (edge ?b ?c)) ((path ?a ?c)))
(let n1 (mk 1))
(let n2 (mk 2))
(let n3 (mk 3))
(rule ((= ?x (mk 0))) ((edge n1 n2))) ; dummy — not fired (no mk 0)
`)
	// Insert edge facts programmatically.
	g := p.Graph()
	edge, _ := g.FunctionByName("edge")
	n1, _ := p.LookupLet("n1")
	n2, _ := p.LookupLet("n2")
	n3, _ := p.LookupLet("n3")
	if _, err := g.Insert(edge, n1, n2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert(edge, n2, n3); err != nil {
		t.Fatal(err)
	}
	p.RunRules(egraph.RunConfig{})
	holds, err := p.Check(mustParseFacts(t, `(path n1 n3)`))
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("transitive path not derived")
	}
}

func TestDatatypeCommand(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(datatype Math
  (MNum i64)
  (MAdd Math Math :cost 3))
(let e (MAdd (MNum 1) (MNum 2)))
(extract e)
`)
	res, _ := p.ExecuteString(`(extract e)`)
	if res[0].Cost != 5 { // 3 + 1 + 1
		t.Errorf("cost = %d, want 5", res[0].Cost)
	}
}

func TestVecSortAlias(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort IntVec (Vec i64))
(sort Op)
(function Blk (IntVec) Op)
(let b (Blk (vec-of 1 2 3)))
(extract b)
`)
	res, _ := p.ExecuteString(`(extract b)`)
	if got := res[0].Term.String(); got != "(Blk (vec-of 1 2 3))" {
		t.Errorf("extract = %s", got)
	}
}

func TestStringPrimitives(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort E)
(function S (String) E)
(rewrite (S ?x) (S (+ ?x "!")) :when ((= ?x "hi")))
(let e (S "hi"))
(run 3)
(check (= e (S "hi!")))
`)
}

func TestF64Primitives(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(function FNum (f64) Expr)
(rewrite (Add (FNum ?x) (FNum ?y)) (FNum (+ ?x ?y)))
(let e (Add (FNum 1.5) (FNum 2.25)))
(run 3)
(check (= e (FNum 3.75)))
`)
}

func TestErrorUnknownCommand(t *testing.T) {
	p := NewProgram()
	if _, err := p.ExecuteString(`(frobnicate 1 2)`); err == nil {
		t.Error("unknown command should error")
	}
}

func TestErrorUnknownSort(t *testing.T) {
	p := NewProgram()
	if _, err := p.ExecuteString(`(function f (Nope) Nope)`); err == nil {
		t.Error("unknown sort should error")
	}
}

func TestErrorUnboundActionVar(t *testing.T) {
	p := NewProgram()
	if _, err := p.ExecuteString(exprPrelude + `(rewrite (Num ?x) (Var ?y))`); err == nil {
		t.Error("unbound RHS variable should error")
	}
}

func TestErrorArity(t *testing.T) {
	p := NewProgram()
	if _, err := p.ExecuteString(exprPrelude + `(let e (Add (Num 1)))`); err == nil {
		t.Error("arity error should be reported")
	}
}

func TestRunReportsIterations(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+paperRules+`(let e (Div (Mul (Var "a") (Num 2)) (Num 2)))`)
	res := mustExec(t, p, `(run 20)`)
	if res[0].Report.Iterations == 0 {
		t.Error("run should record iterations")
	}
	if p.LastRun.Iterations != res[0].Report.Iterations {
		t.Error("LastRun not updated")
	}
}

func TestLetShadowing(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(let e (Num 1))
(let e (Num 2))
(check (= e (Num 2)))
`)
}

// TestWildcardPatterns: `?` and `_` match anything without binding.
func TestWildcardPatterns(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(rewrite (Div ? (Num 0)) (Num 0)) ; nonsense rule, tests wildcard syntax only
(let e (Div (Var "q") (Num 0)))
(run 2)
(check (= e (Num 0)))
`)
}

func BenchmarkSaturateFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewProgram()
		if _, err := p.ExecuteString(exprPrelude + paperRules + `
(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(run 20)
`); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVecOfInPattern: (vec-of ...) in premise position is a computation
// unified against the matched value — here used to find tensors of an
// exact shape.
func TestVecOfInPattern(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort Type)
(sort IntVec (Vec i64))
(function RankedTensor (IntVec Type) Type)
(function F64 () Type)
(relation square2 (Type))
; match only 2x2 tensors: the vec-of premise computes the shape vector
; from bound variables/literals and unifies it with ?shape
(rule ((= ?t (RankedTensor ?shape ?e))
       (= ?shape (vec-of 2 2)))
      ((square2 ?t)))
(let a (RankedTensor (vec-of 2 2) (F64)))
(let b (RankedTensor (vec-of 2 3) (F64)))
(run 3)
(check (square2 a))
`)
	holds, err := p.Check(mustParseFacts(t, `(square2 b)`))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("2x3 tensor classified as square2")
	}
}

// TestVecOfPatternWithVars: a vec-of premise whose elements are variables
// bound by earlier premises.
func TestVecOfPatternWithVars(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, `
(sort Type)
(sort IntVec (Vec i64))
(function RankedTensor (IntVec Type) Type)
(function F64 () Type)
(function transposed (Type) Type)
(rule ((= ?t (RankedTensor ?shape ?e))
       (= ?r (vec-get ?shape 0))
       (= ?c (vec-get ?shape 1)))
      ((set (transposed ?t) (RankedTensor (vec-of ?c ?r) ?e))))
(let a (RankedTensor (vec-of 3 5) (F64)))
(run 3)
(check (= (transposed a) (RankedTensor (vec-of 5 3) (F64))))
`)
}

// TestExtractVariants: (extract e N) lists distinct alternatives of the
// class, cheapest first (Figure 1's "all equivalent programs" made
// visible).
func TestExtractVariants(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+paperRules+`
(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))
(run 20)
`)
	res, err := p.ExecuteString(`(extract expr 5)`)
	if err != nil {
		t.Fatal(err)
	}
	vs := res[0].Variants
	if len(vs) < 3 {
		t.Fatalf("variants = %d, want >= 3", len(vs))
	}
	if vs[0].Term.String() != `(Var "a")` {
		t.Errorf("cheapest variant = %s, want (Var \"a\")", vs[0].Term)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].Cost < vs[i-1].Cost {
			t.Errorf("variants not sorted by cost: %d after %d", vs[i].Cost, vs[i-1].Cost)
		}
	}
	// The (a*2)/2 and (a<<1)/2 alternatives both appear among the Div
	// variants of the class... the root class contains Var, Num 1-mul
	// forms, and Div forms.
	joined := ""
	for _, v := range vs {
		joined += v.Term.String() + "\n"
	}
	if !strings.Contains(joined, "(Div") {
		t.Errorf("expected a Div-rooted variant:\n%s", joined)
	}
	// Single extract still works and matches the first variant.
	res2, err := p.ExecuteString(`(extract expr)`)
	if err != nil {
		t.Fatal(err)
	}
	if res2[0].Term.String() != vs[0].Term.String() {
		t.Errorf("extract (%s) != first variant (%s)", res2[0].Term, vs[0].Term)
	}
}

// TestPrintFunction renders table rows for debugging.
func TestPrintFunction(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(let a (Add (Num 1) (Num 2)))
(let b (Add (Num 3) (Num 4)))
`)
	res, err := p.ExecuteString(`(print-function Add 10)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(rows), rows)
	}
	if rows[0] != "(Add (Num 1) (Num 2)) -> (Add (Num 1) (Num 2))" {
		t.Errorf("row[0] = %q", rows[0])
	}
	// Limit applies.
	res, err = p.ExecuteString(`(print-function Add 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != 1 {
		t.Errorf("limited rows = %d, want 1", len(res[0].Rows))
	}
	if _, err := p.ExecuteString(`(print-function ghost)`); err == nil {
		t.Error("unknown function accepted")
	}
}
