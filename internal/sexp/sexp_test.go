package sexp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustParseOne(t *testing.T, src string) *Node {
	t.Helper()
	n, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", src, err)
	}
	return n
}

func TestParseAtoms(t *testing.T) {
	tests := []struct {
		src  string
		kind Kind
	}{
		{"foo", KindSymbol},
		{"?x", KindSymbol},
		{"vec-of", KindSymbol},
		{"-", KindSymbol},
		{"+", KindSymbol},
		{"<=", KindSymbol},
		{"42", KindInt},
		{"-7", KindInt},
		{"+7", KindInt},
		{"3.5", KindFloat},
		{"-0.25", KindFloat},
		{"1e9", KindFloat},
		{`"hello"`, KindString},
	}
	for _, tt := range tests {
		n := mustParseOne(t, tt.src)
		if n.Kind != tt.kind {
			t.Errorf("Parse(%q) kind = %v, want %v", tt.src, n.Kind, tt.kind)
		}
	}
}

func TestParseValues(t *testing.T) {
	if n := mustParseOne(t, "-42"); n.Int != -42 {
		t.Errorf("int value = %d, want -42", n.Int)
	}
	if n := mustParseOne(t, "2.5"); n.Float != 2.5 {
		t.Errorf("float value = %g, want 2.5", n.Float)
	}
	if n := mustParseOne(t, `"a\nb\"c"`); n.Str != "a\nb\"c" {
		t.Errorf("string value = %q", n.Str)
	}
}

func TestParseList(t *testing.T) {
	n := mustParseOne(t, `(rewrite (Mul ?x (Num 2)) (Shl ?x (Num 1)))`)
	if n.Head() != "rewrite" {
		t.Fatalf("Head = %q, want rewrite", n.Head())
	}
	if len(n.Args()) != 2 {
		t.Fatalf("Args = %d, want 2", len(n.Args()))
	}
	lhs := n.Args()[0]
	if lhs.Head() != "Mul" {
		t.Errorf("lhs head = %q", lhs.Head())
	}
	if !lhs.List[1].IsSymbol("?x") {
		t.Errorf("lhs var = %v", lhs.List[1])
	}
}

func TestParseComments(t *testing.T) {
	nodes, err := Parse("; leading comment\n(a b) ; trailing\n(c)\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}
	if nodes[0].Head() != "a" || nodes[1].Head() != "c" {
		t.Errorf("heads = %q, %q", nodes[0].Head(), nodes[1].Head())
	}
}

func TestParseNested(t *testing.T) {
	n := mustParseOne(t, "(a (b (c (d 1) 2.0) \"s\") ())")
	if len(n.List) != 3 {
		t.Fatalf("len = %d", len(n.List))
	}
	empty := n.List[2]
	if empty.Kind != KindList || len(empty.List) != 0 {
		t.Errorf("expected empty list, got %v", empty)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "(a", `"unterminated`, `"bad \q escape"`, "(a))", "a b"}
	for _, src := range bad {
		if _, err := ParseOne(src); err == nil {
			t.Errorf("ParseOne(%q): expected error", src)
		}
	}
}

func TestParsePositions(t *testing.T) {
	nodes, err := Parse("(a\n  b)")
	if err != nil {
		t.Fatal(err)
	}
	b := nodes[0].List[1]
	if b.Line != 2 || b.Col != 3 {
		t.Errorf("position of b = %d:%d, want 2:3", b.Line, b.Col)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`(sort Expr)`,
		`(function Num (i64) Expr :cost 1)`,
		`(let expr (Div (Mul (Var "a") (Num 2)) (Num 2)))`,
		`(RankedTensor (vec-of 2 3) (I64))`,
		`(rule ((= ?k (log2 ?n)) (= ?n (<< 1 ?k))) ((union ?lhs ?rhs)))`,
		`(NamedAttr "value" (FloatAttr 0.5 (F32)))`,
	}
	for _, src := range srcs {
		n := mustParseOne(t, src)
		again := mustParseOne(t, n.String())
		if !n.Equal(again) {
			t.Errorf("round trip of %q gave %q", src, n.String())
		}
	}
}

func TestEqual(t *testing.T) {
	a := mustParseOne(t, "(f 1 2.0 \"x\")")
	b := mustParseOne(t, "(f 1 2.0 \"x\")")
	c := mustParseOne(t, "(f 1 2.0 \"y\")")
	if !a.Equal(b) {
		t.Error("identical expressions not Equal")
	}
	if a.Equal(c) {
		t.Error("distinct expressions Equal")
	}
	nan1 := Float(math.NaN())
	nan2 := Float(math.NaN())
	if !nan1.Equal(nan2) {
		t.Error("NaN should equal NaN bitwise")
	}
}

func TestClone(t *testing.T) {
	a := mustParseOne(t, "(f (g 1) 2)")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.List[1].List[1].Int = 99
	if a.Equal(b) {
		t.Error("mutating clone affected original")
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		f    float64
		want string
	}{
		{1, "1.0"},
		{2.5, "2.5"},
		{-0.25, "-0.25"},
		{1e21, "1e+21"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.f); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.f, got, tt.want)
		}
	}
	// Floats must re-parse as floats, never ints.
	for _, f := range []float64{0, 1, -3, 1e10, 0.5} {
		n := mustParseOne(t, FormatFloat(f))
		if n.Kind != KindFloat {
			t.Errorf("FormatFloat(%v) = %q re-parsed as %v", f, FormatFloat(f), n.Kind)
		}
	}
}

func TestPretty(t *testing.T) {
	n := mustParseOne(t, "(short list)")
	if strings.Contains(n.Pretty(), "\n") {
		t.Error("short list should stay on one line")
	}
	long := List(Symbol("op"))
	for i := 0; i < 30; i++ {
		long.List = append(long.List, Symbol("some-longish-symbol-name"))
	}
	p := long.Pretty()
	if !strings.Contains(p, "\n") {
		t.Error("long list should wrap")
	}
	again := mustParseOne(t, p)
	if !long.Equal(again) {
		t.Error("Pretty output does not re-parse equal")
	}
}

// Property: String output always re-parses to an Equal node, for randomly
// generated trees built from the quick-checkable seed.
func TestStringRoundTripProperty(t *testing.T) {
	build := func(ints []int8, depth int) *Node {
		if depth == 0 || len(ints) == 0 {
			return Int(int64(len(ints)))
		}
		n := List(Symbol("n"))
		for i, v := range ints {
			switch i % 4 {
			case 0:
				n.List = append(n.List, Int(int64(v)))
			case 1:
				n.List = append(n.List, Float(float64(v)/2))
			case 2:
				n.List = append(n.List, String(strings.Repeat("s", int(v&3))))
			case 3:
				n.List = append(n.List, List(Symbol("leaf"), Int(int64(v))))
			}
		}
		return n
	}
	f := func(ints []int8) bool {
		n := build(ints, 3)
		again, err := ParseOne(n.String())
		return err == nil && n.Equal(again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := strings.Repeat(`(rule ((= ?lhs (arith_divsi ?x (arith_constant (NamedAttr "value" (IntegerAttr ?n ?t)) ?t) ?t))) ((union ?lhs ?x)))`+"\n", 50)
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
