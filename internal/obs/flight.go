package obs

import (
	"io"
	"sync"
	"time"
)

// FlightRecord is one request's always-on observability capture: its
// correlation ID, outcome metadata, and the per-request Recorder whose
// span tree (ingress span, job span, engine iteration/phase/worker
// spans) dumps as a Chrome trace via WriteTrace. Records are created by
// the serving layer for every request — not just slow ones — so when
// the watchdog flags a request after the fact, the evidence already
// exists.
type FlightRecord struct {
	// ID is the request's correlation ID (X-Request-Id).
	ID string
	// Start and Dur time the request end to end.
	Start time.Time
	Dur   time.Duration
	// Status is the HTTP status served; Source the cache disposition
	// ("hit", "flight", "miss", or "" for failed requests).
	Status int
	Source string
	// Tripped marks requests the engine health watchdog flagged;
	// TripReason says why ("growth-rate", "memory-watermark").
	Tripped    bool
	TripReason string
	// Recorder holds the request's span tree. Always non-nil for records
	// the serving layer stores.
	Recorder *Recorder
}

// WriteTrace dumps the record's span tree as Chrome trace-event JSON.
func (fr *FlightRecord) WriteTrace(w io.Writer) error {
	return fr.Recorder.WriteTrace(w)
}

// FlightRecorder is a fixed-size ring buffer of the last N FlightRecords
// — the always-on flight recorder. Memory is bounded by construction:
// at most N records, each holding one request's spans (tens of events
// for a typical request; one per rule-task for a traced saturation), so
// the ring's footprint is N × O(spans per request) regardless of uptime.
// A nil *FlightRecorder is the disabled recorder: Record is a no-op and
// lookups return nothing, mirroring the nil-Recorder convention.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []*FlightRecord
	next int
	n    uint64 // total records ever stored
}

// NewFlightRecorder returns a recorder keeping the last size records
// (size < 1 is clamped to 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{ring: make([]*FlightRecord, 0, size)}
}

// Enabled reports whether records are being kept.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Record stores fr, evicting the oldest record once the ring is full.
func (f *FlightRecorder) Record(fr *FlightRecord) {
	if f == nil || fr == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, fr)
	} else {
		f.ring[f.next] = fr
		f.next = (f.next + 1) % cap(f.ring)
	}
	f.n++
	f.mu.Unlock()
}

// Get returns the record with the given request ID (the newest one, if
// an ID somehow repeats), or nil.
func (f *FlightRecorder) Get(id string) *FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var found *FlightRecord
	for _, fr := range f.ring {
		if fr.ID == id && (found == nil || fr.Start.After(found.Start)) {
			found = fr
		}
	}
	return found
}

// Records returns the stored records oldest-first.
func (f *FlightRecorder) Records() []*FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FlightRecord, 0, len(f.ring))
	// Ring order: [next, end) then [0, next) once wrapped.
	if len(f.ring) == cap(f.ring) {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// Len returns the number of records currently held.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Total returns how many records were ever stored (including evicted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
