package dialegg

import (
	"fmt"

	"dialegg/internal/mlir"
	"dialegg/internal/sexp"
)

// rebuilder converts the extracted egglog term back into MLIR SSA form
// (§5.3 back-translation): structurally identical subterms become one SSA
// definition with multiple uses, opaque Values are resolved to their
// original operations, and nested Reg/Blk terms rebuild regions.
type rebuilder struct {
	tr     *Translation
	encs   *Encodings
	codecs *Codecs

	// memo is a scope stack mapping a term's canonical text to the rebuilt
	// value, giving SSA sharing with correct dominance.
	memo []map[string]*mlir.Value
	// valueRemap maps original SSA values (function/block args, opaque
	// results) to their rebuilt counterparts.
	valueRemap map[*mlir.Value]*mlir.Value
	// reEmitted memoizes opaque original ops already copied into the new
	// function.
	reEmitted map[*mlir.Operation]*mlir.Operation
	// rebuiltEncoded marks ops created from encoded terms; only these are
	// candidates for the post-rebuild dead-code sweep.
	rebuiltEncoded map[*mlir.Operation]bool

	cur *mlir.Block
}

// RebuildFunc creates a fresh func.func from the extracted root block term,
// reusing orig's name, signature, and argument names. Pure rewritten ops
// whose results end up unused are swept (block elements pin every original
// op in the e-graph; the sweep is the dataflow DCE that extraction from a
// bare dataflow root would have given — see DESIGN.md).
func RebuildFunc(orig *mlir.Operation, rootTerm *sexp.Node, tr *Translation, encs *Encodings) (*mlir.Operation, error) {
	return RebuildFuncWithCodecs(orig, rootTerm, tr, encs, nil)
}

// RebuildFuncWithCodecs is RebuildFunc with custom de-eggifiers (§5.2).
func RebuildFuncWithCodecs(orig *mlir.Operation, rootTerm *sexp.Node, tr *Translation, encs *Encodings, codecs *Codecs) (*mlir.Operation, error) {
	if rootTerm.Head() != "Blk" {
		return nil, fmt.Errorf("dialegg: extracted root is not a block term: %s", rootTerm.Head())
	}
	rb := &rebuilder{
		tr:             tr,
		encs:           encs,
		codecs:         codecs,
		valueRemap:     make(map[*mlir.Value]*mlir.Value),
		reEmitted:      make(map[*mlir.Operation]*mlir.Operation),
		rebuiltEncoded: make(map[*mlir.Operation]bool),
	}

	f := mlir.NewOperation("func.func", nil, nil)
	f.Attrs = append([]mlir.NamedAttribute(nil), orig.Attrs...)
	entry := f.AddRegion().AddBlock()
	origEntry := orig.Regions[0].First()
	for _, a := range origEntry.Args {
		na := entry.AddArg(a.Typ, a.Name)
		rb.valueRemap[a] = na
	}

	if err := rb.rebuildBlockInto(entry, rootTerm, origEntry); err != nil {
		return nil, err
	}
	rb.sweepDead(f)
	return f, nil
}

func (rb *rebuilder) pushScope() { rb.memo = append(rb.memo, make(map[string]*mlir.Value)) }
func (rb *rebuilder) popScope()  { rb.memo = rb.memo[:len(rb.memo)-1] }

func (rb *rebuilder) memoGet(key string) (*mlir.Value, bool) {
	for i := len(rb.memo) - 1; i >= 0; i-- {
		if v, ok := rb.memo[i][key]; ok {
			return v, true
		}
	}
	return nil, false
}

func (rb *rebuilder) memoPut(key string, v *mlir.Value) {
	rb.memo[len(rb.memo)-1][key] = v
}

// rebuildBlockInto rebuilds the ops of a (Blk (vec-of ...)) term into b.
// origBlock, when known, is the original block this term derives from:
// vector elements are positionally stable through saturation (nothing
// rewrites Blk vectors), so element i is the optimized form of
// origBlock.Ops[i]; each original single result is remapped to the rebuilt
// value so that opaque operations referencing it pick up the optimized
// definition instead of re-emitting the original chain.
func (rb *rebuilder) rebuildBlockInto(b *mlir.Block, blkTerm *sexp.Node, origBlock *mlir.Block) error {
	if blkTerm.Head() != "Blk" || len(blkTerm.Args()) != 1 || blkTerm.Args()[0].Head() != "vec-of" {
		return fmt.Errorf("dialegg: malformed block term %s", blkTerm)
	}
	prev := rb.cur
	rb.cur = b
	rb.pushScope()
	defer func() {
		rb.popScope()
		rb.cur = prev
	}()
	elems := blkTerm.Args()[0].Args()
	zip := origBlock != nil && len(origBlock.Ops) == len(elems)
	for i, elem := range elems {
		var origOp *mlir.Operation
		if zip {
			origOp = origBlock.Ops[i]
		}
		v, err := rb.buildTerm(elem, origOp)
		if err != nil {
			return err
		}
		if zip && v != nil {
			orig := origBlock.Ops[i]
			if len(orig.Results) == 1 {
				if _, bound := rb.valueRemap[orig.Results[0]]; !bound {
					rb.valueRemap[orig.Results[0]] = v
				}
			}
		}
	}
	return nil
}

// buildTerm rebuilds one term, appending any needed operations to the
// current block, and returns the term's SSA value (nil for zero-result
// operations such as terminators). origOp, when non-nil, is the original
// operation this term is the optimized form of (known positionally: Blk
// vectors are stable through saturation); it anchors region rebinding
// when the term's leaves cannot identify the original block themselves.
func (rb *rebuilder) buildTerm(term *sexp.Node, origOp *mlir.Operation) (*mlir.Value, error) {
	key := term.String()
	if v, ok := rb.memoGet(key); ok {
		return v, nil
	}
	head := term.Head()
	if head == "Value" {
		return rb.buildValue(term)
	}
	enc, ok := rb.encs.LookupEgg(head)
	if !ok {
		return nil, fmt.Errorf("dialegg: extracted term has no encoding: %s", head)
	}
	args := term.Args()
	want := enc.NumOperands + enc.NumAttrs + enc.NumRegions
	if enc.HasResultType {
		want++
	}
	if len(args) != want {
		return nil, fmt.Errorf("dialegg: term %s has %d args, encoding wants %d", head, len(args), want)
	}

	// Operands first (dominance: their defining ops are appended before
	// this one).
	operands := make([]*mlir.Value, enc.NumOperands)
	for i := 0; i < enc.NumOperands; i++ {
		v, err := rb.buildTerm(args[i], nil)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, fmt.Errorf("dialegg: operand %d of %s has no value", i, head)
		}
		operands[i] = v
	}

	var attrs []mlir.NamedAttribute
	for i := 0; i < enc.NumAttrs; i++ {
		na, err := rb.codecs.TermToNamedAttr(args[enc.NumOperands+i])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, na)
	}

	var resultTypes []mlir.Type
	if enc.HasResultType {
		t, err := rb.codecs.TermToType(args[len(args)-1])
		if err != nil {
			return nil, err
		}
		resultTypes = []mlir.Type{t}
	}

	op := mlir.NewOperation(enc.MLIRName, operands, resultTypes)
	op.Attrs = attrs
	rb.cur.Append(op)
	rb.rebuiltEncoded[op] = true

	// Regions last: region scopes may reference values defined so far.
	// origOp anchors positional block matching only when the extracted
	// term is still the same operation shape as the original (a rewrite
	// that replaced the op wholesale carries no region correspondence).
	var origRegions []*mlir.Region
	if origOp != nil && origOp.Name == enc.MLIRName && len(origOp.Regions) == enc.NumRegions {
		origRegions = origOp.Regions
	}
	regionStart := enc.NumOperands + enc.NumAttrs
	for i := 0; i < enc.NumRegions; i++ {
		var origRegion *mlir.Region
		if origRegions != nil {
			origRegion = origRegions[i]
		}
		if err := rb.rebuildRegion(op, args[regionStart+i], origRegion); err != nil {
			return nil, err
		}
	}

	var result *mlir.Value
	if len(op.Results) == 1 {
		result = op.Results[0]
	}
	rb.memoPut(key, result)
	return result, nil
}

// buildValue resolves a (Value id type) leaf: a function/block argument or
// an opaque operation result.
func (rb *rebuilder) buildValue(term *sexp.Node) (*mlir.Value, error) {
	if len(term.Args()) != 2 || term.Args()[0].Kind != sexp.KindInt {
		return nil, fmt.Errorf("dialegg: malformed Value term %s", term)
	}
	id := term.Args()[0].Int
	if op, ok := rb.tr.OpaqueOps[id]; ok {
		return rb.reEmitOpaque(op, id)
	}
	orig, ok := rb.tr.ValueIDs[id]
	if !ok {
		return nil, fmt.Errorf("dialegg: Value id %d was never assigned by translation", id)
	}
	if v, ok := rb.valueRemap[orig]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("dialegg: Value id %d (%s) has no rebuilt binding; a rewrite moved a block argument out of its region", id, orig)
}

// reEmitOpaque copies an untranslated original operation into the rebuilt
// function, resolving its operands against the rebuilt values (and
// re-emitting their original defining ops when the optimized dataflow no
// longer provides them — opaque operands are invisible to the e-graph).
func (rb *rebuilder) reEmitOpaque(op *mlir.Operation, id int64) (*mlir.Value, error) {
	if copyOp, done := rb.reEmitted[op]; done {
		return rb.resultForID(copyOp, op, id)
	}
	operands := make([]*mlir.Value, len(op.Operands))
	for i, o := range op.Operands {
		v, err := rb.rebuildOriginalValue(o)
		if err != nil {
			return nil, err
		}
		operands[i] = v
	}
	types := make([]mlir.Type, len(op.Results))
	for i, r := range op.Results {
		types[i] = r.Typ
	}
	copyOp := mlir.NewOperation(op.Name, operands, types)
	copyOp.Attrs = append([]mlir.NamedAttribute(nil), op.Attrs...)
	// Opaque ops with regions are copied wholesale; their interiors were
	// never in the e-graph.
	for _, reg := range op.Regions {
		cr := copyOp.AddRegion()
		for _, blk := range reg.Blocks {
			cb := cr.AddBlock()
			for _, a := range blk.Args {
				na := cb.AddArg(a.Typ, a.Name)
				rb.valueRemap[a] = na
			}
			for _, inner := range blk.Ops {
				iv, err := rb.reEmitOpaqueInner(inner, cb)
				if err != nil {
					return nil, err
				}
				_ = iv
			}
		}
	}
	rb.cur.Append(copyOp)
	rb.reEmitted[op] = copyOp
	for i, r := range op.Results {
		rb.valueRemap[r] = copyOp.Results[i]
	}
	return rb.resultForID(copyOp, op, id)
}

func (rb *rebuilder) reEmitOpaqueInner(op *mlir.Operation, into *mlir.Block) (*mlir.Operation, error) {
	operands := make([]*mlir.Value, len(op.Operands))
	for i, o := range op.Operands {
		v, err := rb.rebuildOriginalValue(o)
		if err != nil {
			return nil, err
		}
		operands[i] = v
	}
	types := make([]mlir.Type, len(op.Results))
	for i, r := range op.Results {
		types[i] = r.Typ
	}
	copyOp := mlir.NewOperation(op.Name, operands, types)
	copyOp.Attrs = append([]mlir.NamedAttribute(nil), op.Attrs...)
	for _, reg := range op.Regions {
		cr := copyOp.AddRegion()
		for _, blk := range reg.Blocks {
			cb := cr.AddBlock()
			for _, a := range blk.Args {
				na := cb.AddArg(a.Typ, a.Name)
				rb.valueRemap[a] = na
			}
			for _, inner := range blk.Ops {
				if _, err := rb.reEmitOpaqueInner(inner, cb); err != nil {
					return nil, err
				}
			}
		}
	}
	into.Append(copyOp)
	for i, r := range op.Results {
		rb.valueRemap[r] = copyOp.Results[i]
	}
	return copyOp, nil
}

// resultForID picks the copied result corresponding to the Value id.
func (rb *rebuilder) resultForID(copyOp, op *mlir.Operation, id int64) (*mlir.Value, error) {
	if len(op.Results) == 0 {
		return nil, nil
	}
	orig, ok := rb.tr.ValueIDs[id]
	if !ok {
		return copyOp.Results[0], nil
	}
	for i, r := range op.Results {
		if r == orig {
			return copyOp.Results[i], nil
		}
	}
	return copyOp.Results[0], nil
}

// rebuildOriginalValue maps an original SSA value into the rebuilt
// function, re-emitting its original defining op when necessary.
func (rb *rebuilder) rebuildOriginalValue(o *mlir.Value) (*mlir.Value, error) {
	if v, ok := rb.valueRemap[o]; ok {
		return v, nil
	}
	if o.IsBlockArg() {
		return nil, fmt.Errorf("dialegg: block argument %s not in scope during rebuild", o)
	}
	if o.Def == nil {
		return nil, fmt.Errorf("dialegg: value %s has no definition", o)
	}
	// Re-emit the original defining op (unoptimized): opaque operands are
	// invisible to the e-graph, so their producers may be absent from the
	// extracted dataflow.
	copyOp, err := rb.reEmitOpaqueDef(o.Def)
	if err != nil {
		return nil, err
	}
	for i, r := range o.Def.Results {
		if r == o {
			return copyOp.Results[i], nil
		}
	}
	return nil, fmt.Errorf("dialegg: lost track of %s during re-emission", o)
}

func (rb *rebuilder) reEmitOpaqueDef(op *mlir.Operation) (*mlir.Operation, error) {
	if copyOp, done := rb.reEmitted[op]; done {
		return copyOp, nil
	}
	copyOp, err := rb.reEmitOpaqueInner(op, rb.cur)
	if err != nil {
		return nil, err
	}
	rb.reEmitted[op] = copyOp
	for i, r := range op.Results {
		rb.valueRemap[r] = copyOp.Results[i]
	}
	return copyOp, nil
}

// rebuildRegion rebuilds a (Reg (vec-of (Blk ...)...)) term into a new
// region of op, creating entry-block arguments from the original block
// whose arguments the region body references. origRegion, when non-nil,
// is the original region this term derives from (known positionally from
// the original op); its blocks anchor the rebinding even when the body
// never references its own arguments directly — e.g. an scf.for whose
// iter_arg is only used inside a nested scf.if region.
func (rb *rebuilder) rebuildRegion(op *mlir.Operation, regTerm *sexp.Node, origRegion *mlir.Region) error {
	if regTerm.Head() != "Reg" || len(regTerm.Args()) != 1 || regTerm.Args()[0].Head() != "vec-of" {
		return fmt.Errorf("dialegg: malformed region term %s", regTerm)
	}
	region := op.AddRegion()
	for bi, blkTerm := range regTerm.Args()[0].Args() {
		block := region.AddBlock()
		// Identify the original block: positionally through the original
		// region when known (the strongest evidence), otherwise by scanning
		// the body for leaves the block owns.
		var origBlock *mlir.Block
		if origRegion != nil && bi < len(origRegion.Blocks) && !rb.blockClaimed(origRegion.Blocks[bi]) {
			origBlock = origRegion.Blocks[bi]
		}
		if origBlock == nil {
			origBlock = rb.findOriginalBlock(blkTerm, op.Name)
		}
		if origBlock != nil {
			for _, a := range origBlock.Args {
				na := block.AddArg(a.Typ, a.Name)
				rb.valueRemap[a] = na
			}
		} else if op.Name == "scf.for" {
			// Convention fallback: induction variable plus one argument
			// per iter operand.
			block.AddArg(mlir.Index, "")
			for i := 3; i < len(op.Operands); i++ {
				block.AddArg(op.Operands[i].Typ, "")
			}
		}
		if err := rb.rebuildBlockInto(block, blkTerm, origBlock); err != nil {
			return err
		}
	}
	return nil
}

// findOriginalBlock locates the original block this (Blk ...) term derives
// from, so its arguments can be rebound to the rebuilt block's arguments.
// It scans the term for Value leaves — block arguments and opaque
// operation results — whose original location is known, then walks up as
// many original region levels as there are Reg boundaries between the leaf
// and this block term. A leaf the block *owns* lands exactly on the block
// at this term's level, but a leaf capturing a value from an enclosing
// region walks up to a strictly shallower block — and when the enclosing
// op has the same name (a nested scf.for capturing the outer iter_arg),
// the name guard alone cannot tell them apart. Enclosing blocks were
// already claimed by the time a nested region is rebuilt (regions rebuild
// outside-in, and each original block derives at most one rebuilt block),
// so candidates whose arguments are already rebound are rejected and the
// scan continues to a leaf the block really owns.
func (rb *rebuilder) findOriginalBlock(blkTerm *sexp.Node, opName string) *mlir.Block {
	var found *mlir.Block
	var scan func(n *sexp.Node, depth int)
	scan = func(n *sexp.Node, depth int) {
		if found != nil || n.Kind != sexp.KindList {
			return
		}
		if n.Head() == "Value" && len(n.Args()) == 2 && n.Args()[0].Kind == sexp.KindInt {
			id := n.Args()[0].Int
			var leafBlock *mlir.Block
			if op, ok := rb.tr.OpaqueOps[id]; ok {
				leafBlock = op.ParentBlock
			} else if orig, ok := rb.tr.ValueIDs[id]; ok && orig.IsBlockArg() {
				leafBlock = orig.OwnerBlock
			}
			if leafBlock == nil {
				return
			}
			if c := walkUpBlocks(leafBlock, depth); c != nil &&
				c.ParentRegion != nil && c.ParentRegion.ParentOp != nil &&
				c.ParentRegion.ParentOp.Name == opName &&
				!rb.blockClaimed(c) {
				found = c
			}
			return
		}
		childDepth := depth
		if n.Head() == "Reg" {
			childDepth++
		}
		for _, c := range n.List {
			scan(c, childDepth)
		}
	}
	scan(blkTerm, 0)
	return found
}

// blockClaimed reports whether b's arguments are already rebound — i.e.
// b was already identified as the original of some other rebuilt block
// (an enclosing one; regions rebuild outside-in). A claimed block cannot
// be the original of the term being rebuilt, so a leaf that walks up to
// one is a captured use of an enclosing region's value, not evidence of
// the block's identity.
func (rb *rebuilder) blockClaimed(b *mlir.Block) bool {
	if len(b.Args) == 0 {
		return false
	}
	_, claimed := rb.valueRemap[b.Args[0]]
	return claimed
}

// walkUpBlocks ascends n region levels from b, returning nil when the
// chain runs out.
func walkUpBlocks(b *mlir.Block, n int) *mlir.Block {
	for ; n > 0 && b != nil; n-- {
		if b.ParentRegion == nil || b.ParentRegion.ParentOp == nil {
			return nil
		}
		b = b.ParentRegion.ParentOp.ParentBlock
	}
	return b
}

// sweepDead removes rebuilt encoded ops whose results are all unused.
// Re-emitted opaque ops are kept (unknown effects); zero-result ops
// (terminators, plain loops) are kept.
func (rb *rebuilder) sweepDead(f *mlir.Operation) {
	for {
		used := make(map[*mlir.Value]bool)
		f.Walk(func(op *mlir.Operation) bool {
			for _, o := range op.Operands {
				used[o] = true
			}
			return true
		})
		removed := false
		var sweep func(b *mlir.Block)
		sweep = func(b *mlir.Block) {
			kept := b.Ops[:0]
			for _, op := range b.Ops {
				for _, r := range op.Regions {
					for _, inner := range r.Blocks {
						sweep(inner)
					}
				}
				// Region-carrying ops are never swept even when their
				// results are unused: their bodies may hold re-emitted
				// opaque operations whose effects must survive (§4.3).
				if rb.rebuiltEncoded[op] && len(op.Results) > 0 && len(op.Regions) == 0 {
					live := false
					for _, res := range op.Results {
						if used[res] {
							live = true
							break
						}
					}
					if !live {
						op.ParentBlock = nil
						removed = true
						continue
					}
				}
				kept = append(kept, op)
			}
			b.Ops = kept
		}
		for _, r := range f.Regions {
			for _, b := range r.Blocks {
				sweep(b)
			}
		}
		if !removed {
			return
		}
	}
}
