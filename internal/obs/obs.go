// Package obs is the observability layer of the saturation engine and the
// DialEgg pipeline: a low-overhead span/event recorder whose output renders
// as Chrome trace-event JSON (chrome://tracing, Perfetto), plus pprof
// profiling helpers for the CLIs.
//
// The recorder is designed around two constraints:
//
//   - Zero cost when disabled. Every method is safe on a nil *Recorder and
//     returns immediately, so instrumented code guards nothing and
//     allocates nothing unless a trace was requested.
//   - Safe under the match-phase worker pool. Event appends are
//     mutex-guarded, so concurrent recorders cannot corrupt the buffer;
//     the saturation runner additionally buffers per-task timings in its
//     (goroutine-private) task structs and emits them after the phase
//     barrier, keeping the recorder entirely off the parallel hot path.
//
// Events are complete spans ("X" phase in the trace-event format) placed
// on lanes: lane 0 is the pipeline (DialEgg phases, egglog commands),
// lane 1 the engine (iterations and their match/apply/rebuild phases),
// and lanes LaneWorker+w the match-phase workers, which is what makes the
// pool's load balance visible in a trace viewer.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Lanes (trace "tid"s). Worker w records on LaneWorker + w.
const (
	LanePipeline = 0
	LaneEngine   = 1
	// LaneServe carries the serving layer's per-request spans (egg-serve):
	// one span per HTTP optimize request plus one per executed job, so a
	// trace shows queueing and cache behavior above the pipeline lanes.
	LaneServe  = 2
	LaneWorker = 100
)

// Event is one recorded span in trace-event terms: a complete ("X") event
// with a start timestamp and duration relative to the recorder's epoch.
type Event struct {
	// Name is the span label (rule name, phase name, command head).
	Name string
	// Cat is the event category ("phase", "iter", "match", "command").
	Cat string
	// Lane is the trace thread the event renders on.
	Lane int
	// Start is the offset from the recorder's epoch.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
	// Args holds optional key/value annotations shown in the viewer.
	Args map[string]int64
}

// Recorder accumulates trace events. The zero value is not useful; create
// one with NewRecorder. A nil *Recorder is the disabled recorder: every
// method is a cheap no-op, so callers thread it unconditionally.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	lanes  map[int]string
	labels map[string]string
}

// NewRecorder returns an enabled recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), lanes: make(map[int]string)}
}

// Enabled reports whether events are being recorded. It is the guard
// instrumented code uses before doing per-event work (like reading the
// clock) that the nil-receiver no-ops cannot elide.
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// SetLaneName names a lane in the trace viewer ("pipeline", "worker 3").
func (r *Recorder) SetLaneName(lane int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lanes[lane] = name
	r.mu.Unlock()
}

// SetLabel attaches a trace-level string label ("request_id", ...). The
// labels ride on the trace's process metadata, so every span in the
// trace — and every consumer of the file — shares them; the serving
// layer uses one recorder per request with its request ID as a label,
// which is what correlates a flight-recorder trace with log lines and
// journal events for the same request.
func (r *Recorder) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.labels == nil {
		r.labels = make(map[string]string)
	}
	r.labels[key] = value
	r.mu.Unlock()
}

// Labels returns a copy of the trace-level labels (nil when none).
func (r *Recorder) Labels() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.labels))
	for k, v := range r.labels {
		out[k] = v
	}
	return out
}

// Complete records a span that ran from start for dur. args may be nil.
func (r *Recorder) Complete(lane int, cat, name string, start time.Time, dur time.Duration, args map[string]int64) {
	if r == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Lane: lane, Start: start.Sub(r.epoch), Dur: dur, Args: args}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Span starts a span now and returns the function that ends it. Usage:
//
//	defer rec.Span(obs.LanePipeline, "command", "run")()
func (r *Recorder) Span(lane int, cat, name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Complete(lane, cat, name, start, time.Since(start), nil) }
}

// Events returns a copy of the recorded events sorted by start time
// (longer spans first on ties, so parents precede their children).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// LaneNames returns a copy of the lane-name table.
func (r *Recorder) LaneNames() map[int]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]string, len(r.lanes))
	for k, v := range r.lanes {
		out[k] = v
	}
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
