// Command egg-prof is the saturation profiler's offline half: it builds,
// merges, lints, and renders canonical profile artifacts (see
// internal/obs/profile) from the observability outputs the other tools
// already produce — mutation journals (-journal on egg-opt/egglog) and
// stats JSON (--stats-json), plus profile artifacts written directly with
// their -profile flags.
//
// Usage:
//
//	egg-prof build -journal run.jsonl -stats stats.json -o profile.json
//	egg-prof merge -o all.json fn1.json fn2.json
//	egg-prof blame profile.json        # per-rule extraction cost/benefit
//	egg-prof selectivity profile.json  # sampled premise fan-out/selectivity
//	egg-prof top -n 10 profile.json    # most expensive rules
//	egg-prof lint profile.json         # schema + invariant check
//
// build folds any mix of repeatable -journal, -stats, and -in inputs into
// one artifact; counters sum per rule. blame, selectivity, and top read
// one artifact and render a report to stdout. lint validates artifacts the
// way prof-smoke's CI gate does and exits nonzero on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dialegg/internal/egraph"
	"dialegg/internal/obs/profile"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "egg-prof:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: egg-prof <build|merge|blame|selectivity|top|lint> [flags] [args]")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "build":
		return runBuild(rest)
	case "merge":
		return runMerge(rest)
	case "blame", "selectivity", "top":
		return runReport(cmd, rest)
	case "lint":
		return runLint(rest)
	default:
		return usage()
	}
}

// runBuild folds journals, stats JSON, and existing artifacts into one
// profile. Inputs merge by rule name, so profiling a module run function
// by function and building once gives the same artifact as merging
// per-function artifacts.
func runBuild(args []string) error {
	fs := flag.NewFlagSet("egg-prof build", flag.ContinueOnError)
	var journals, stats, ins stringList
	fs.Var(&journals, "journal", "mutation journal (JSONL; egg-opt/egglog -journal output; repeatable)")
	fs.Var(&stats, "stats", "stats JSON (egg-opt/egglog --stats-json output; repeatable)")
	fs.Var(&ins, "in", "existing profile artifact to fold in (repeatable)")
	out := fs.String("o", "", "output artifact path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("build takes no positional arguments (use -journal/-stats/-in)")
	}
	if len(journals)+len(stats)+len(ins) == 0 {
		return fmt.Errorf("build needs at least one -journal, -stats, or -in input")
	}
	agg := profile.New()
	for _, path := range journals {
		p, err := profile.FromJournalFile(path)
		if err != nil {
			return err
		}
		agg.Merge(p)
	}
	for _, path := range stats {
		p, err := profileFromStats(path)
		if err != nil {
			return err
		}
		agg.Merge(p)
	}
	for _, path := range ins {
		p, err := profile.ReadFile(path)
		if err != nil {
			return err
		}
		agg.Merge(p)
	}
	// Journals count each (run ...) they witnessed; stats and artifacts
	// count their own runs. Nothing else to reconcile: Merge summed it.
	return emit(agg, *out)
}

// runMerge folds finished artifacts (the module/fleet aggregation path).
func runMerge(args []string) error {
	fs := flag.NewFlagSet("egg-prof merge", flag.ContinueOnError)
	out := fs.String("o", "", "output artifact path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge needs at least one artifact")
	}
	agg := profile.New()
	for _, path := range fs.Args() {
		p, err := profile.ReadFile(path)
		if err != nil {
			return err
		}
		agg.Merge(p)
	}
	return emit(agg, *out)
}

// runReport renders one artifact's blame, selectivity, or top table.
func runReport(kind string, args []string) error {
	fs := flag.NewFlagSet("egg-prof "+kind, flag.ContinueOnError)
	n := fs.Int("n", 10, "rows to show (top only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s takes exactly one artifact", kind)
	}
	p, err := profile.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	switch kind {
	case "blame":
		if len(p.Blame) == 0 {
			return fmt.Errorf("%s has no blame section (produce it with -profile on egg-opt/egglog)", fs.Arg(0))
		}
		fmt.Print(p.FormatBlame())
	case "selectivity":
		if len(p.Selectivity) == 0 {
			return fmt.Errorf("%s has no selectivity section (produce it with -profile-sample N)", fs.Arg(0))
		}
		fmt.Print(p.FormatSelectivity())
	case "top":
		fmt.Print(p.FormatTop(*n))
	}
	return nil
}

// runLint validates artifacts; the first violation fails the command.
func runLint(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("lint needs at least one artifact")
	}
	for _, path := range args {
		if _, err := profile.ReadFile(path); err != nil {
			return err
		}
		fmt.Printf("%s: ok\n", path)
	}
	return nil
}

// profileFromStats converts a --stats-json output into a profile. egg-opt
// writes a dialegg.Report with the engine report under "run" (and blame
// rows under "blame" when -profile ran); egglog writes a bare
// egraph.RunReport. The "run" key distinguishes them.
func profileFromStats(path string) (*profile.Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Run   *egraph.RunReport `json:"run"`
		Blame []egraph.BlameRow `json:"blame"`
	}
	if err := json.Unmarshal(b, &wrapped); err == nil && wrapped.Run != nil {
		p := profile.FromRunReport(*wrapped.Run, wrapped.Blame)
		p.Sources = []string{path}
		return p, nil
	}
	var rr egraph.RunReport
	if err := json.Unmarshal(b, &rr); err != nil {
		return nil, fmt.Errorf("%s: not a stats JSON: %w", path, err)
	}
	p := profile.FromRunReport(rr, nil)
	p.Sources = []string{path}
	return p, nil
}

// emit lints and writes the artifact to path, or stdout when path is "".
func emit(p *profile.Profile, path string) error {
	if err := p.Lint(); err != nil {
		return fmt.Errorf("built profile fails lint: %w", err)
	}
	if path == "" {
		b, err := p.Encode()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	return p.Write(path)
}
