package dialects

import (
	"testing"

	"dialegg/internal/mlir"
)

// foldHarness builds a binary op over two constants (or one constant, one
// argument) and runs its registered fold.
type foldHarness struct {
	reg *mlir.Registry
	arg *mlir.Value
}

func newFoldHarness(t *testing.T) *foldHarness {
	t.Helper()
	f := mlir.NewOperation("func.func", nil, nil)
	blk := f.AddRegion().AddBlock()
	arg := blk.AddArg(mlir.I64, "x")
	return &foldHarness{reg: NewRegistry(), arg: arg}
}

func (h *foldHarness) constOp(v int64, typ mlir.Type) *mlir.Value {
	c := mlir.NewOperation("arith.constant", nil, []mlir.Type{typ})
	c.SetAttr("value", mlir.IntegerAttr{Value: v, Type: typ})
	return c.Results[0]
}

func (h *foldHarness) constF(v float64, typ mlir.Type) *mlir.Value {
	c := mlir.NewOperation("arith.constant", nil, []mlir.Type{typ})
	c.SetAttr("value", mlir.FloatAttr{Value: v, Type: typ})
	return c.Results[0]
}

func (h *foldHarness) fold(t *testing.T, name string, operands []*mlir.Value, resType mlir.Type) (mlir.FoldResult, bool) {
	t.Helper()
	def, ok := h.reg.Lookup(name)
	if !ok || def.Fold == nil {
		t.Fatalf("%s has no fold", name)
	}
	op := mlir.NewOperation(name, operands, []mlir.Type{resType})
	return def.Fold(op)
}

func TestIntFoldTable(t *testing.T) {
	h := newFoldHarness(t)
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"arith.addi", 2, 3, 5},
		{"arith.subi", 2, 3, -1},
		{"arith.muli", 6, 7, 42},
		{"arith.divsi", 17, 5, 3},
		{"arith.divsi", -21, 2, -10},
		{"arith.remsi", 17, 5, 2},
		{"arith.shli", 3, 4, 48},
		{"arith.shrsi", -64, 3, -8},
		{"arith.andi", 0b1100, 0b1010, 0b1000},
		{"arith.ori", 0b1100, 0b1010, 0b1110},
		{"arith.xori", 0b1100, 0b1010, 0b0110},
		{"arith.maxsi", -2, 5, 5},
		{"arith.minsi", -2, 5, -2},
	}
	for _, c := range cases {
		res, ok := h.fold(t, c.op, []*mlir.Value{h.constOp(c.a, mlir.I64), h.constOp(c.b, mlir.I64)}, mlir.I64)
		if !ok {
			t.Errorf("%s(%d,%d): no fold", c.op, c.a, c.b)
			continue
		}
		got, isConst := res.Attr.(mlir.IntegerAttr)
		if !isConst || got.Value != c.want {
			t.Errorf("%s(%d,%d) = %v, want %d", c.op, c.a, c.b, res.Attr, c.want)
		}
	}
}

func TestIntFoldRefusals(t *testing.T) {
	h := newFoldHarness(t)
	// Division by zero must not fold.
	if _, ok := h.fold(t, "arith.divsi", []*mlir.Value{h.constOp(1, mlir.I64), h.constOp(0, mlir.I64)}, mlir.I64); ok {
		t.Error("divsi by zero folded")
	}
	// Shift by 64 must not fold.
	if _, ok := h.fold(t, "arith.shli", []*mlir.Value{h.constOp(1, mlir.I64), h.constOp(64, mlir.I64)}, mlir.I64); ok {
		t.Error("shli by 64 folded")
	}
	// Two non-constants must not fold.
	if _, ok := h.fold(t, "arith.addi", []*mlir.Value{h.arg, h.arg}, mlir.I64); ok {
		t.Error("addi of arguments folded")
	}
}

func TestIdentityFoldTable(t *testing.T) {
	h := newFoldHarness(t)
	cases := []struct {
		op      string
		constV  int64
		onRight bool
	}{
		{"arith.addi", 0, true},
		{"arith.addi", 0, false},
		{"arith.muli", 1, true},
		{"arith.muli", 1, false},
		{"arith.subi", 0, true},
		{"arith.shli", 0, true},
		{"arith.shrsi", 0, true},
		{"arith.divsi", 1, true},
		{"arith.ori", 0, true},
		{"arith.xori", 0, true},
	}
	for _, c := range cases {
		operands := []*mlir.Value{h.arg, h.constOp(c.constV, mlir.I64)}
		if !c.onRight {
			operands = []*mlir.Value{h.constOp(c.constV, mlir.I64), h.arg}
		}
		res, ok := h.fold(t, c.op, operands, mlir.I64)
		if !ok {
			t.Errorf("%s identity (const %d, right=%t) did not fold", c.op, c.constV, c.onRight)
			continue
		}
		if res.Value != h.arg {
			t.Errorf("%s identity returned %v, want the argument", c.op, res)
		}
	}
}

func TestFloatFolds(t *testing.T) {
	h := newFoldHarness(t)
	res, ok := h.fold(t, "arith.addf", []*mlir.Value{h.constF(1.5, mlir.F64), h.constF(2.25, mlir.F64)}, mlir.F64)
	if !ok || res.Attr.(mlir.FloatAttr).Value != 3.75 {
		t.Errorf("addf fold = %v", res.Attr)
	}
	res, ok = h.fold(t, "arith.mulf", []*mlir.Value{h.argF(t), h.constF(1, mlir.F64)}, mlir.F64)
	if !ok || res.Value == nil {
		t.Errorf("mulf by 1.0 should return the value, got %v", res)
	}
	// negf of negf cancels.
	neg := mlir.NewOperation("arith.negf", []*mlir.Value{h.argF(t)}, []mlir.Type{mlir.F64})
	res, ok = h.fold(t, "arith.negf", []*mlir.Value{neg.Results[0]}, mlir.F64)
	if !ok || res.Value != neg.Operands[0] {
		t.Errorf("negf(negf(x)) should fold to x, got %v", res)
	}
}

func (h *foldHarness) argF(t *testing.T) *mlir.Value {
	t.Helper()
	f := mlir.NewOperation("func.func", nil, nil)
	return f.AddRegion().AddBlock().AddArg(mlir.F64, "y")
}

func TestMathFolds(t *testing.T) {
	h := newFoldHarness(t)
	res, ok := h.fold(t, "math.sqrt", []*mlir.Value{h.constF(16, mlir.F64)}, mlir.F64)
	if !ok || res.Attr.(mlir.FloatAttr).Value != 4 {
		t.Errorf("sqrt fold = %v", res.Attr)
	}
	// sqrt of negative must not fold.
	if _, ok := h.fold(t, "math.sqrt", []*mlir.Value{h.constF(-1, mlir.F64)}, mlir.F64); ok {
		t.Error("sqrt(-1) folded")
	}
	res, ok = h.fold(t, "math.powf", []*mlir.Value{h.constF(2, mlir.F64), h.constF(10, mlir.F64)}, mlir.F64)
	if !ok || res.Attr.(mlir.FloatAttr).Value != 1024 {
		t.Errorf("powf fold = %v", res.Attr)
	}
	// x^1 folds to x.
	a := h.argF(t)
	res, ok = h.fold(t, "math.powf", []*mlir.Value{a, h.constF(1, mlir.F64)}, mlir.F64)
	if !ok || res.Value != a {
		t.Errorf("powf(x,1) = %v, want x", res)
	}
}

func TestCastFolds(t *testing.T) {
	h := newFoldHarness(t)
	res, ok := h.fold(t, "arith.sitofp", []*mlir.Value{h.constOp(5, mlir.I64)}, mlir.F64)
	if !ok || res.Attr.(mlir.FloatAttr).Value != 5 {
		t.Errorf("sitofp fold = %v", res.Attr)
	}
	res, ok = h.fold(t, "arith.index_cast", []*mlir.Value{h.constOp(9, mlir.Index)}, mlir.I64)
	if !ok || res.Attr.(mlir.IntegerAttr).Value != 9 {
		t.Errorf("index_cast fold = %v", res.Attr)
	}
}

func TestTensorDimFold(t *testing.T) {
	h := newFoldHarness(t)
	tt := mlir.TensorOf(mlir.F64, 7, 9)
	src := mlir.NewOperation("tensor.empty", nil, []mlir.Type{tt})
	res, ok := h.fold(t, "tensor.dim", []*mlir.Value{src.Results[0], h.constOp(1, mlir.Index)}, mlir.Index)
	if !ok || res.Attr.(mlir.IntegerAttr).Value != 9 {
		t.Errorf("dim fold = %v", res.Attr)
	}
	// Dynamic dims must not fold.
	dt := mlir.RankedTensorType{Shape: []int64{mlir.DynamicDim, 9}, Elem: mlir.F64}
	dsrc := mlir.NewOperation("tensor.empty", nil, []mlir.Type{dt})
	if _, ok := h.fold(t, "tensor.dim", []*mlir.Value{dsrc.Results[0], h.constOp(0, mlir.Index)}, mlir.Index); ok {
		t.Error("dynamic dim folded")
	}
}
