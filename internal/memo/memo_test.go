package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dialegg/internal/egraph"
	"dialegg/internal/obs"
	"dialegg/internal/sched"
)

const keyModule = "module {\n}\n"

// TestKeyConfigNormalization: a zero config and an explicit-default config
// address the same entry; a semantically different config does not.
func TestKeyConfigNormalization(t *testing.T) {
	zero := Key(keyModule, nil, egraph.RunConfig{})
	expl := Key(keyModule, nil, egraph.RunConfig{}.WithDefaults())
	if zero != expl {
		t.Errorf("zero config key %s != defaulted config key %s", zero, expl)
	}
	other := Key(keyModule, nil, egraph.RunConfig{IterLimit: 7})
	if other == zero {
		t.Error("IterLimit change did not change the key")
	}
	naive := Key(keyModule, nil, egraph.RunConfig{Naive: true})
	if naive == zero {
		t.Error("Naive change did not change the key")
	}
}

// TestKeySchedulerSensitivity: a real scheduler is part of result
// identity, while nil and the simple strategy share the historic
// unscheduled key (they are bit-identical runs).
func TestKeySchedulerSensitivity(t *testing.T) {
	base := Key(keyModule, nil, egraph.RunConfig{})
	simple := Key(keyModule, nil, egraph.RunConfig{Scheduler: sched.Simple{}})
	if simple != base {
		t.Error("simple scheduler fragmented the cache key")
	}
	backoff := Key(keyModule, nil, egraph.RunConfig{Scheduler: sched.Backoff{Threshold: 10}})
	if backoff == base {
		t.Error("backoff scheduler did not change the key")
	}
	tuned := Key(keyModule, nil, egraph.RunConfig{Scheduler: sched.Backoff{Threshold: 20}})
	if tuned == backoff {
		t.Error("scheduler parameters did not change the key")
	}
}

// TestKeyIgnoresObservability: workers, sharding, metrics, tracing, and
// cancellation contexts do not change results, so they must not fragment
// the cache.
func TestKeyIgnoresObservability(t *testing.T) {
	base := Key(keyModule, []string{"(ruleset x)"}, egraph.RunConfig{})
	traced := Key(keyModule, []string{"(ruleset x)"}, egraph.RunConfig{
		Workers:     8,
		MatchShards: 32,
		RuleMetrics: true,
		Recorder:    obs.NewRecorder(),
		Ctx:         context.Background(),
	})
	if base != traced {
		t.Error("observability knobs changed the cache key")
	}
}

// TestKeyRuleSensitivity: rule text, order, and section boundaries all
// matter.
func TestKeyRuleSensitivity(t *testing.T) {
	ab := Key(keyModule, []string{"a", "b"}, egraph.RunConfig{})
	ba := Key(keyModule, []string{"b", "a"}, egraph.RunConfig{})
	joined := Key(keyModule, []string{"ab"}, egraph.RunConfig{})
	if ab == ba {
		t.Error("rule order did not change the key")
	}
	if ab == joined {
		t.Error("rule section boundary did not change the key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	val := make([]byte, 1000)
	per := int64(len("k0") + len(val) + entryOverhead)
	c := NewCache(3 * per)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("k%d", i), val)
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Add("k3", val)
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 3 entries, 1 eviction", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceeds budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestCacheOversizeRejected(t *testing.T) {
	c := NewCache(256)
	c.Add("small", []byte("x"))
	c.Add("big", make([]byte, 10_000))
	if _, ok := c.Get("big"); ok {
		t.Error("oversize entry stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversize add evicted resident entries for nothing")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

func TestCacheReplace(t *testing.T) {
	c := NewCache(1 << 20)
	c.Add("k", []byte("v1"))
	c.Add("k", []byte("longer value 2"))
	got, ok := c.Get("k")
	if !ok || string(got) != "longer value 2" {
		t.Errorf("got %q, want replacement value", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestCacheZeroBudget(t *testing.T) {
	c := NewCache(0)
	c.Add("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Error("zero-budget cache stored an entry")
	}
}

// TestGroupDedup: N concurrent Do calls for one key run fn once and all
// observe its result; exactly one caller reports shared == false.
func TestGroupDedup(t *testing.T) {
	g := NewGroup()
	var runs atomic.Int32
	release := make(chan struct{})
	const n = 8

	var wg sync.WaitGroup
	leaders := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
				runs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil || string(val) != "result" {
				t.Errorf("Do = %q, %v", val, err)
			}
			if !shared {
				leaders.Add(1)
			}
		}()
	}
	// Wait until the flight exists so all callers join it.
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Errorf("%d callers saw shared=false, want 1", got)
	}
	if g.Inflight() != 0 {
		t.Error("flight not cleaned up")
	}
}

// TestGroupCancelLastWaiter: when every waiter abandons a flight, its
// context is canceled and a later Do starts a fresh computation.
func TestGroupCancelLastWaiter(t *testing.T) {
	g := NewGroup()
	started := make(chan struct{})
	canceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-fctx.Done()
			close(canceled)
			return nil, fctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoned waiter got %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never canceled after last waiter left")
	}
	wg.Wait()

	// The key is free again: a new Do must run a fresh fn.
	val, shared, err := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || shared || string(val) != "fresh" {
		t.Errorf("post-cancel Do = %q, shared=%v, err=%v; want fresh leader run", val, shared, err)
	}
}

// TestGroupSurvivingWaiter: one waiter leaving does not cancel the flight
// for the one that stays.
func TestGroupSurvivingWaiter(t *testing.T) {
	g := NewGroup()
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(ctx1, "k", func(fctx context.Context) ([]byte, error) {
			close(leaderIn)
			select {
			case <-release:
				return []byte("ok"), nil
			case <-fctx.Done():
				return nil, fctx.Err()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leaving waiter got %v", err)
		}
	}()
	<-leaderIn

	wg.Add(1)
	var stayVal []byte
	var stayErr error
	stayJoined := make(chan struct{})
	go func() {
		defer wg.Done()
		// Join the flight, then outlive the first waiter.
		close(stayJoined)
		stayVal, _, stayErr = g.Do(context.Background(), "k", nil)
	}()
	<-stayJoined
	// Give the stayer a moment to actually register as a waiter before the
	// first caller leaves (joining takes the group lock; poll its effect).
	for {
		g.mu.Lock()
		c := g.calls["k"]
		n := 0
		if c != nil {
			n = c.waiters
		}
		g.mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	close(release)
	wg.Wait()
	if stayErr != nil || string(stayVal) != "ok" {
		t.Errorf("surviving waiter got %q, %v; want ok", stayVal, stayErr)
	}
}
