package dialegg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dialegg/internal/dialects"
	"dialegg/internal/interp"
	"dialegg/internal/mlir"
	"dialegg/internal/passes"
	"dialegg/internal/rules"
)

// randLoopProgram generates a function with an accumulator loop whose body
// is a random straight-line computation over the accumulator, the
// induction variable, and constants — exercising DialEgg's region
// translation, block-argument rebinding, and in-loop rewriting. An scf.if
// over a loop-varying condition is included half the time.
func randLoopProgram(rng *rand.Rand, nOps int) string {
	var b strings.Builder
	b.WriteString("func.func @f(%a: i64, %n: index) -> i64 {\n")
	b.WriteString("  %c0 = arith.constant 0 : index\n")
	b.WriteString("  %c1 = arith.constant 1 : index\n")
	b.WriteString("  %zero = arith.constant 0 : i64\n")
	b.WriteString("  %two = arith.constant 2 : i64\n")
	nConsts := 0
	b.WriteString("  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %zero) -> (i64) {\n")
	b.WriteString("    %iv = arith.index_cast %i : index to i64\n")
	vals := []string{"%a", "%acc", "%iv"}
	pick := func() string { return vals[rng.Intn(len(vals))] }
	emitConst := func(v int64) string {
		nConsts++
		name := fmt.Sprintf("%%k%d", nConsts)
		fmt.Fprintf(&b, "    %s = arith.constant %d : i64\n", name, v)
		return name
	}
	for i := 0; i < nOps; i++ {
		name := fmt.Sprintf("%%v%d", i)
		switch rng.Intn(7) {
		case 0:
			fmt.Fprintf(&b, "    %s = arith.addi %s, %s : i64\n", name, pick(), pick())
		case 1:
			fmt.Fprintf(&b, "    %s = arith.subi %s, %s : i64\n", name, pick(), pick())
		case 2:
			fmt.Fprintf(&b, "    %s = arith.muli %s, %s : i64\n", name, pick(), pick())
		case 3:
			d := int64(1) << uint(rng.Intn(9)+1) // power of two: rewrite target
			k := emitConst(d)
			fmt.Fprintf(&b, "    %s = arith.divsi %s, %s : i64\n", name, pick(), k)
		case 4:
			d := int64(rng.Intn(98) + 2)
			if d == 2 || d == 4 || d == 8 {
				d++ // keep this one a non-power-of-two
			}
			k := emitConst(d)
			fmt.Fprintf(&b, "    %s = arith.divsi %s, %s : i64\n", name, pick(), k)
		case 5:
			fmt.Fprintf(&b, "    %s = arith.xori %s, %s : i64\n", name, pick(), pick())
		default:
			k := emitConst(int64(rng.Intn(16)))
			fmt.Fprintf(&b, "    %s = arith.shrsi %s, %s : i64\n", name, pick(), k)
		}
		vals = append(vals, name)
	}
	last := vals[len(vals)-1]
	if rng.Intn(2) == 0 {
		// Wrap the yield value in an scf.if over a loop-varying condition.
		fmt.Fprintf(&b, "    %%cnd = arith.cmpi sgt, %s, %%zero : i64\n", pick())
		fmt.Fprintf(&b, "    %%sel = scf.if %%cnd -> (i64) {\n")
		fmt.Fprintf(&b, "      %%t = arith.addi %s, %%two : i64\n", last)
		fmt.Fprintf(&b, "      scf.yield %%t : i64\n    } else {\n")
		fmt.Fprintf(&b, "      scf.yield %%acc : i64\n    }\n")
		fmt.Fprintf(&b, "    scf.yield %%sel : i64\n")
	} else {
		fmt.Fprintf(&b, "    scf.yield %s : i64\n", last)
	}
	b.WriteString("  }\n  func.return %r : i64\n}\n")
	return b.String()
}

// randDivisorIsPow2Safe: generated dividends can be negative, and the
// sound division rewrite must preserve results exactly — this fuzz drives
// the whole region machinery (loops, ifs, block args) plus the rewrite.
func TestDifferentialSoundnessLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing skipped in -short")
	}
	rng := rand.New(rand.NewSource(424242))
	ruleSrcs := []string{rules.ArithCore, rules.ConstantFold, rules.DivPow2Sound}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		src := randLoopProgram(rng, 2+rng.Intn(8))
		reg := dialects.NewRegistry()
		m, err := mlir.ParseModule(src, reg)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		if err := reg.Verify(m.Op); err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		om := m.Clone()
		opt := NewOptimizer(Options{RuleSources: ruleSrcs})
		if _, err := opt.OptimizeModule(om); err != nil {
			t.Fatalf("trial %d: optimizer: %v\n%s", trial, err, src)
		}
		if err := reg.Verify(om.Op); err != nil {
			t.Fatalf("trial %d: optimized invalid: %v\n%s\n->\n%s", trial, err, src,
				mlir.PrintModule(om, reg))
		}
		cm := m.Clone()
		if _, err := passes.NewPassManager(reg).Add(passes.NewCanonicalize()).Run(cm); err != nil {
			t.Fatalf("trial %d: canonicalize: %v", trial, err)
		}

		for probe := 0; probe < 5; probe++ {
			a := rng.Int63n(1<<32) - (1 << 31)
			n := int64(rng.Intn(12))
			want := callLoop(t, m, a, n)
			if got := callLoop(t, om, a, n); got != want {
				t.Fatalf("trial %d: DialEgg changed semantics: f(%d,%d) = %d, want %d\n%s\n->\n%s",
					trial, a, n, got, want, src, mlir.PrintModule(om, reg))
			}
			if got := callLoop(t, cm, a, n); got != want {
				t.Fatalf("trial %d: canonicalize changed semantics: f(%d,%d) = %d, want %d\n%s",
					trial, a, n, got, want, src)
			}
		}
	}
}

func callLoop(t *testing.T, m *mlir.Module, a, n int64) int64 {
	t.Helper()
	in := interp.New(m)
	res, err := in.Call("f", interp.IntValue(a), interp.IntValue(n))
	if err != nil {
		t.Fatalf("interpretation failed: %v\n%s", err, mlir.PrintModule(m, dialects.NewRegistry()))
	}
	return res[0].Int()
}
