package egraph

// Tests for the observability layer's accounting: per-rule metrics, the
// cross-field invariants the stats validator (tracelint) relies on, report
// merging, and the stats-JSON round trip.

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dialegg/internal/obs"
)

// buildChainGraph builds a 60-leaf Add chain with comm rules on Add and
// Mul — enough rows that the match phase shards and several iterations run.
func buildChainGraph() (*exprLang, []*Rule) {
	l := newExprLangQuiet()
	g := l.g
	prev, _ := g.Insert(l.Num, I64Value(g.I64, 0))
	for i := 1; i < 60; i++ {
		leaf, _ := g.Insert(l.Num, I64Value(g.I64, int64(i)))
		prev, _ = g.Insert(l.Add, prev, leaf)
	}
	return l, []*Rule{commRule(l.Add), commRule(l.Mul)}
}

// TestRuleMetricsInvariants: the invariants the per-rule accounting
// guarantees — matched >= applied >= noops, per-rule rows sum to the
// total, sub-query counts positive, and per-rule matched sums to the
// per-iteration matches.
func TestRuleMetricsInvariants(t *testing.T) {
	for _, naive := range []bool{false, true} {
		l, rules := buildChainGraph()
		rep := l.g.Run(rules, RunConfig{IterLimit: 4, Workers: 2, RuleMetrics: true, Naive: naive})
		if len(rep.Rules) != len(rules) {
			t.Fatalf("naive=%v: %d rule stats for %d rules", naive, len(rep.Rules), len(rules))
		}
		var ruleRows, matched, applied int64
		for _, r := range rep.Rules {
			if r.Name == "" {
				t.Errorf("naive=%v: unnamed rule stats entry", naive)
			}
			if r.Applied > r.Matched {
				t.Errorf("naive=%v: rule %s: applied %d > matched %d", naive, r.Name, r.Applied, r.Matched)
			}
			if r.Noops > r.Applied {
				t.Errorf("naive=%v: rule %s: noops %d > applied %d", naive, r.Name, r.Noops, r.Applied)
			}
			if naive && r.DeltaQueries != 0 {
				t.Errorf("naive=true: rule %s ran %d delta queries", r.Name, r.DeltaQueries)
			}
			ruleRows += r.RowsScanned
			matched += r.Matched
			applied += r.Applied
		}
		if ruleRows != rep.RowsScanned {
			t.Errorf("naive=%v: per-rule rows %d != total %d", naive, ruleRows, rep.RowsScanned)
		}
		var iterMatches int64
		for _, it := range rep.PerIter {
			iterMatches += int64(it.Matches)
		}
		if applied != iterMatches {
			t.Errorf("naive=%v: per-rule applied %d != per-iter matches %d", naive, applied, iterMatches)
		}
		// No MatchLimit was hit, so every found match was applied.
		if matched != applied {
			t.Errorf("naive=%v: matched %d != applied %d without truncation", naive, matched, applied)
		}
	}
}

// TestRuleMetricsNoopDetection: in naive mode every iteration re-applies
// the previous iterations' matches, which the effect counters must
// classify as no-ops.
func TestRuleMetricsNoopDetection(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	g.Insert(l.Add, a, b)
	rep := g.Run([]*Rule{commRule(l.Add)}, RunConfig{IterLimit: 4, Naive: true, RuleMetrics: true})
	if !rep.Saturated() {
		t.Fatalf("stop = %s, want saturated", rep.Stop)
	}
	rs := rep.Rules[0]
	// Iteration 1: one productive match. Iteration 2: both orientations
	// re-match and change nothing.
	if rs.Applied < 3 || rs.Noops != rs.Applied-1 {
		t.Errorf("rule stats = %+v, want exactly one productive apply", rs)
	}
}

// TestTaskRowsSumToRowsScanned: IterStats.RowsScanned equals the sum of
// TaskRows when RecordTaskTimes is set — the invariant that per-task
// accounting loses no rows.
func TestTaskRowsSumToRowsScanned(t *testing.T) {
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{IterLimit: 4, Workers: 4, MatchShards: 8, RecordTaskTimes: true})
	for i, it := range rep.PerIter {
		if len(it.TaskRows) != len(it.TaskTimes) {
			t.Fatalf("iter %d: %d task rows, %d task times", i+1, len(it.TaskRows), len(it.TaskTimes))
		}
		var sum int64
		for _, r := range it.TaskRows {
			sum += r
		}
		if sum != it.RowsScanned {
			t.Errorf("iter %d: task rows sum %d != rows scanned %d", i+1, sum, it.RowsScanned)
		}
	}
}

// TestDeltaRowsVsRowsScanned: a semi-naive iteration that produced match
// tasks scans at least its frontier (each delta sub-query walks the
// frontier rows).
func TestDeltaRowsVsRowsScanned(t *testing.T) {
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{IterLimit: 4, Workers: 2})
	for i, it := range rep.PerIter {
		if !it.SemiNaive || it.RowsScanned == 0 {
			continue
		}
		if int64(it.DeltaRows) > it.RowsScanned {
			t.Errorf("iter %d: delta rows %d > rows scanned %d", i+1, it.DeltaRows, it.RowsScanned)
		}
	}
}

// TestRuleMetricsWorkerIndependent: per-rule totals are identical at every
// worker count, in both match modes — metrics describe the (deterministic)
// computation, not the schedule. Time fields are excluded; everything
// counted must agree exactly.
func TestRuleMetricsWorkerIndependent(t *testing.T) {
	type counts struct {
		Matched, Applied, Noops, RowsScanned, DeltaQueries, FullScans int64
	}
	for _, naive := range []bool{false, true} {
		var want []counts
		for _, workers := range []int{1, 2, 8} {
			l, rules := buildChainGraph()
			rep := l.g.Run(rules, RunConfig{IterLimit: 4, Workers: workers, MatchShards: 8, RuleMetrics: true, Naive: naive})
			got := make([]counts, len(rep.Rules))
			for i, r := range rep.Rules {
				got[i] = counts{r.Matched, r.Applied, r.Noops, r.RowsScanned, r.DeltaQueries, r.FullScans}
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("naive=%v workers=%d rule %s: %+v, want (serial) %+v",
						naive, workers, rep.Rules[i].Name, got[i], want[i])
				}
			}
		}
	}
}

// TestRuleMetricsOffCostsNothing: with RuleMetrics unset, no per-rule
// stats, gauges, or find counts are produced (their collection is what
// costs; absence is the observable contract).
func TestRuleMetricsOffCostsNothing(t *testing.T) {
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{IterLimit: 3, Workers: 2})
	if rep.Rules != nil {
		t.Errorf("RuleMetrics off but Rules = %v", rep.Rules)
	}
	for i, it := range rep.PerIter {
		if it.Classes != 0 || it.LiveRows != 0 || it.Finds != 0 {
			t.Errorf("iter %d: gauges populated with metrics off: %+v", i+1, it)
		}
	}
}

// TestRuleMetricsGauges: with RuleMetrics set, the per-iteration gauges
// are populated and consistent with the final report.
func TestRuleMetricsGauges(t *testing.T) {
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{IterLimit: 3, Workers: 2, RuleMetrics: true})
	last := rep.PerIter[len(rep.PerIter)-1]
	if last.Classes != rep.Classes {
		t.Errorf("last iteration classes %d != report classes %d", last.Classes, rep.Classes)
	}
	if last.LiveRows == 0 {
		t.Errorf("live rows gauge not populated")
	}
	if last.Finds == 0 {
		t.Errorf("find counter not populated")
	}
}

// TestRunReportMerge: Merge sums the counters, keeps the final-state
// fields from the merged-in report, and folds rule stats by name.
func TestRunReportMerge(t *testing.T) {
	a := RunReport{
		Iterations: 2, Stop: StopSaturated, Nodes: 10, Classes: 4,
		Elapsed: 5 * time.Millisecond, MatchTime: time.Millisecond,
		RowsScanned: 100,
		PerIter:     []IterStats{{Matches: 1}, {Matches: 2}},
		Rules:       []RuleStats{{Name: "comm", Matched: 3, Applied: 3}},
	}
	b := RunReport{
		Iterations: 1, Stop: StopIterLimit, Nodes: 20, Classes: 6,
		Elapsed: time.Millisecond, MatchTime: time.Millisecond,
		RowsScanned: 50, Workers: 4,
		PerIter: []IterStats{{Matches: 5}},
		Rules: []RuleStats{
			{Name: "comm", Matched: 2, Applied: 1, Noops: 1},
			{Name: "assoc", Matched: 7, Applied: 7},
		},
	}
	a.Merge(b)
	if a.Iterations != 3 || a.RowsScanned != 150 || a.Elapsed != 6*time.Millisecond {
		t.Errorf("summed fields wrong: %+v", a)
	}
	if a.Nodes != 20 || a.Classes != 6 || a.Stop != StopIterLimit || a.Workers != 4 {
		t.Errorf("final-state fields wrong: %+v", a)
	}
	if len(a.PerIter) != 3 {
		t.Errorf("per-iter entries = %d, want 3", len(a.PerIter))
	}
	if len(a.Rules) != 2 || a.Rules[0].Name != "comm" || a.Rules[1].Name != "assoc" {
		t.Fatalf("merged rules = %+v", a.Rules)
	}
	if a.Rules[0].Matched != 5 || a.Rules[0].Applied != 4 || a.Rules[0].Noops != 1 {
		t.Errorf("comm totals wrong: %+v", a.Rules[0])
	}
}

// TestRunReportJSONRoundTrip: the stats-JSON schema survives a
// marshal/unmarshal round trip with every counted field intact.
func TestRunReportJSONRoundTrip(t *testing.T) {
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{IterLimit: 3, Workers: 2, RuleMetrics: true, RecordTaskTimes: true})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"iterations"`, `"rows_scanned"`, `"match_ns"`, `"per_iter"`, `"rules"`, `"delta_queries"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("stats JSON missing %s", key)
		}
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Err is json:"-"; clear it for the comparison (it is nil here anyway).
	rep.Err = nil
	if back.Iterations != rep.Iterations || back.RowsScanned != rep.RowsScanned ||
		back.MatchTime != rep.MatchTime || back.Stop != rep.Stop {
		t.Errorf("round trip changed scalars: %+v vs %+v", back, rep)
	}
	if len(back.Rules) != len(rep.Rules) {
		t.Fatalf("round trip changed rule count: %d vs %d", len(back.Rules), len(rep.Rules))
	}
	for i := range back.Rules {
		if back.Rules[i] != rep.Rules[i] {
			t.Errorf("rule %d changed: %+v vs %+v", i, back.Rules[i], rep.Rules[i])
		}
	}
	if len(back.PerIter) != len(rep.PerIter) {
		t.Fatalf("round trip changed iteration count")
	}
	for i := range back.PerIter {
		if back.PerIter[i].RowsScanned != rep.PerIter[i].RowsScanned ||
			back.PerIter[i].Matches != rep.PerIter[i].Matches ||
			back.PerIter[i].Finds != rep.PerIter[i].Finds {
			t.Errorf("iter %d changed: %+v vs %+v", i+1, back.PerIter[i], rep.PerIter[i])
		}
	}
}

// TestRunTraceSpans: a run with a recorder emits engine-lane phase spans
// and worker-lane match spans, and the rendered trace validates.
func TestRunTraceSpans(t *testing.T) {
	rec := obs.NewRecorder()
	l, rules := buildChainGraph()
	l.g.Run(rules, RunConfig{IterLimit: 3, Workers: 2, MatchShards: 4, Recorder: rec})
	var engine, worker, run int
	for _, ev := range rec.Events() {
		switch {
		case ev.Lane == obs.LaneEngine && ev.Name == "run":
			run++
		case ev.Lane == obs.LaneEngine:
			engine++
		case ev.Lane >= obs.LaneWorker:
			worker++
		}
	}
	if run != 1 {
		t.Errorf("run spans = %d, want 1", run)
	}
	if engine == 0 || worker == 0 {
		t.Errorf("engine spans = %d, worker spans = %d, want both > 0", engine, worker)
	}
	var sb strings.Builder
	if err := rec.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ValidateTrace([]byte(sb.String()))
	if err != nil {
		t.Fatalf("trace from run does not validate: %v", err)
	}
	if spans != rec.Len() {
		t.Errorf("validated %d spans, recorded %d", spans, rec.Len())
	}
}

// TestFormatRuleStats: the table renders one aligned row per rule in
// declaration order.
func TestFormatRuleStats(t *testing.T) {
	out := FormatRuleStats([]RuleStats{
		{Name: "comm-add", Matched: 10, Applied: 8, Noops: 2, RowsScanned: 40, DeltaQueries: 3, FullScans: 1},
		{Name: "comm-mul"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "comm-add") || !strings.HasPrefix(lines[2], "comm-mul") {
		t.Errorf("rows out of declaration order:\n%s", out)
	}
	if !strings.Contains(lines[0], "matched") || !strings.Contains(lines[0], "delta") {
		t.Errorf("header missing columns: %s", lines[0])
	}
}
