// Package genmod generates random MLIR modules for differential testing.
// The generator is seeded and fully deterministic: the same Config always
// yields byte-identical output, which is what makes fuzz verdicts
// reproducible (`egg-fuzz -seed S` re-creates the exact module stream) and
// lets the checked-in corpus pin regressions as plain seeds.
//
// Generated modules are restricted, by construction, to the subset the
// execution substrate (internal/interp) defines completely: arith and math
// scalar ops on i64/f64/i1, scf.for loops with iter_args (including
// zero-trip-count loops), scf.if with both branches, and fixed-shape f64
// tensor chains through linalg.matmul. Every generated program is total —
// division by zero is architecturally defined (see interp.divARM), shift
// amounts are masked, tensor indices are generated in bounds — so the
// differential oracle (internal/difftest) never has to discard an input.
//
// Op selection is rule-set aware: a Profile weights the generator toward
// the shapes a rule bundle actually rewrites (powers of two as divisors
// for the §7.2 rule, fastmath 1/sqrt idioms for §7.3, matmul chains for
// §7.4), so saturation has real targets instead of rewriting nothing.
package genmod

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Profile selects the op families the generator draws from and the idioms
// it deliberately plants. Use ProfileFor to get the profile matching a
// bundled rule set.
type Profile struct {
	// Name labels the profile in reports and corpus headers.
	Name string
	// Int enables i64 arithmetic (add/sub/mul/min/max).
	Int bool
	// Bitwise enables and/or/xor and shifts with masked amounts.
	Bitwise bool
	// DivRem enables divsi/remsi (total under AArch64 semantics).
	DivRem bool
	// PowTwoBias biases constant divisors toward powers of two, the §7.2
	// rewrite target.
	PowTwoBias bool
	// Float enables f64 arithmetic (add/sub/mul/div/min/max/neg/abs).
	Float bool
	// Sqrt enables math.sqrt and the planted fastmath 1/sqrt idiom the
	// §7.3 rule rewrites into a @fast_inv_sqrt call.
	Sqrt bool
	// FastMath stamps fastmath<fast> on a fraction of float ops.
	FastMath bool
	// CmpSelect enables cmpi/cmpf + arith.select.
	CmpSelect bool
	// Casts enables arith.sitofp and index_cast of the induction variable.
	Casts bool
	// Loops enables scf.for with iter_args (trip counts include zero).
	Loops bool
	// If enables scf.if with else over generated conditions.
	If bool
	// Tensors enables tensor<4x4xf64> function arguments and
	// tensor.empty/linalg.matmul/linalg.fill/tensor.extract chains, the
	// §7.4 associativity target.
	Tensors bool
}

// ProfileFor returns the generation profile matched to a bundled rule
// set's rewrite targets. Unknown names (and "") get the mixed profile.
func ProfileFor(ruleSet string) Profile {
	switch ruleSet {
	case "imgconv":
		// Integer pipeline: constant folding + div-by-pow2.
		return Profile{Name: "imgconv", Int: true, Bitwise: true, DivRem: true,
			PowTwoBias: true, CmpSelect: true, Casts: true, Loops: true, If: true}
	case "vecnorm":
		// Float pipeline: fastmath 1/sqrt -> fast_inv_sqrt.
		return Profile{Name: "vecnorm", Float: true, Sqrt: true, FastMath: true,
			CmpSelect: true, Loops: true, If: true}
	case "poly":
		// Float pipeline: Horner reassociation over mulf/addf chains.
		return Profile{Name: "poly", Float: true, CmpSelect: true, Loops: true, If: true}
	case "matmul":
		// Tensor pipeline: matmul chain associativity.
		return Profile{Name: "matmul", Float: true, Tensors: true}
	default:
		return Profile{Name: "mixed", Int: true, Bitwise: true, DivRem: true,
			PowTwoBias: true, Float: true, Sqrt: true, FastMath: true,
			CmpSelect: true, Casts: true, Loops: true, If: true}
	}
}

// Config parameterizes one generated module.
type Config struct {
	// Seed drives all randomness; equal configs generate equal text.
	Seed int64
	// Ops is the op budget: generation stops once this many operations
	// (constants, compute ops, and region ops with their bodies) have been
	// emitted. Defaults to 12.
	Ops int
	// Profile selects op families; the zero Profile means mixed.
	Profile Profile
	// FuncName is the generated function's symbol (default "fuzz").
	FuncName string
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 12
	}
	if c.Profile.Name == "" {
		c.Profile = ProfileFor("")
	}
	if c.FuncName == "" {
		c.FuncName = "fuzz"
	}
	return c
}

// tensorType is the fixed shape every tensor value uses, keeping any
// matmul chain composable without shape inference.
const tensorType = "tensor<4x4xf64>"

type gen struct {
	cfg    Config
	p      Profile
	rng    *rand.Rand
	body   strings.Builder
	indent string
	budget int
	names  int
	depth  int // region nesting depth
	// pools maps a type string to the in-scope SSA names of that type.
	pools map[string][]string
}

// poolTypes is the fixed key order for deterministic pool iteration.
var poolTypes = []string{"i64", "f64", "i1", "index", tensorType}

// Generate renders one random module as MLIR text. The output always
// parses, verifies, and executes: see the package comment for the exact
// subset. Generation is deterministic in cfg.
func Generate(cfg Config) string {
	cfg = cfg.withDefaults()
	g := &gen{
		cfg:    cfg,
		p:      cfg.Profile,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		indent: "  ",
		budget: cfg.Ops,
		pools:  make(map[string][]string),
	}
	args := g.signature()
	for g.budget > 0 {
		g.emitRandomOp()
	}
	retNames, retTypes := g.pickReturns()

	var b strings.Builder
	fmt.Fprintf(&b, "// genmod seed=%d profile=%s ops=%d\n", cfg.Seed, g.p.Name, cfg.Ops)
	fmt.Fprintf(&b, "func.func @%s(%s) -> (%s) {\n", cfg.FuncName,
		strings.Join(args, ", "), strings.Join(retTypes, ", "))
	b.WriteString(g.body.String())
	fmt.Fprintf(&b, "  func.return %s : %s\n}\n",
		strings.Join(retNames, ", "), strings.Join(retTypes, ", "))
	return b.String()
}

// signature seeds the argument pools and returns the printed parameter
// list. The shape depends only on the profile, so the oracle can generate
// inputs from the parsed function type.
func (g *gen) signature() []string {
	var args []string
	add := func(name, typ string) {
		args = append(args, fmt.Sprintf("%%%s: %s", name, typ))
		g.pools[typ] = append(g.pools[typ], "%"+name)
	}
	if g.p.Tensors {
		add("ta", tensorType)
		add("tb", tensorType)
		add("x", "f64")
		return args
	}
	if g.p.Int {
		add("a", "i64")
		add("b", "i64")
		add("c", "i64")
	}
	if g.p.Float {
		add("x", "f64")
		add("y", "f64")
		if !g.p.Int {
			add("z", "f64")
		}
	}
	return args
}

func (g *gen) newName() string {
	g.names++
	return fmt.Sprintf("%%v%d", g.names)
}

// emit writes one op line and charges the budget.
func (g *gen) emit(format string, a ...any) {
	g.body.WriteString(g.indent)
	fmt.Fprintf(&g.body, format, a...)
	g.body.WriteByte('\n')
	g.budget--
}

func (g *gen) define(name, typ string) {
	g.pools[typ] = append(g.pools[typ], name)
}

// pick returns an in-scope value of the type, materializing a constant
// when the pool is empty.
func (g *gen) pick(typ string) string {
	pool := g.pools[typ]
	if len(pool) == 0 {
		return g.emitConst(typ)
	}
	return pool[g.rng.Intn(len(pool))]
}

// fmtFloat renders a float literal the parser reads back as f64.
func fmtFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

func (g *gen) emitConst(typ string) string {
	name := g.newName()
	switch typ {
	case "i64":
		g.emit("%s = arith.constant %d : i64", name, g.randInt())
	case "f64":
		g.emit("%s = arith.constant %s : f64", name, fmtFloat(g.randFloat()))
	case "index":
		g.emit("%s = arith.constant %d : index", name, g.rng.Intn(7))
	case "i1":
		// i1 "constants" come from a comparison so every boolean has an
		// arith source the rules can reason about.
		lhs, rhs := g.pick("i64"), g.pick("i64")
		g.emit("%s = arith.cmpi sle, %s, %s : i64", name, lhs, rhs)
	default: // tensor
		g.emit("%s = tensor.empty() : %s", name, tensorType)
	}
	g.define(name, typ)
	return name
}

func (g *gen) randInt() int64 {
	switch g.rng.Intn(6) {
	case 0:
		return int64(g.rng.Intn(5)) // 0..4
	case 1:
		return 1 << uint(g.rng.Intn(10)+1) // power of two
	case 2:
		return -int64(g.rng.Intn(100))
	case 3:
		return int64(g.rng.Intn(100))
	case 4:
		return g.rng.Int63n(1<<32) - (1 << 31)
	default:
		return 1
	}
}

func (g *gen) randFloat() float64 {
	switch g.rng.Intn(5) {
	case 0:
		return float64(g.rng.Intn(9)) / 2.0 // 0, 0.5, ..., 4
	case 1:
		return 1
	case 2:
		return -g.rng.Float64() * 4
	default:
		return g.rng.Float64() * 8
	}
}

// production is one weighted generation rule.
type production struct {
	weight  int
	minOps  int // budget needed
	emit    func()
	enabled bool
}

func (g *gen) emitRandomOp() {
	prods := g.productions()
	total := 0
	for _, p := range prods {
		if p.enabled && g.budget >= p.minOps {
			total += p.weight
		}
	}
	if total == 0 {
		// Budget too small for anything structured: emit a constant.
		if g.p.Float && !g.p.Int {
			g.emitConst("f64")
		} else if g.p.Tensors {
			g.emitConst("f64")
		} else {
			g.emitConst("i64")
		}
		return
	}
	n := g.rng.Intn(total)
	for _, p := range prods {
		if !p.enabled || g.budget < p.minOps {
			continue
		}
		n -= p.weight
		if n < 0 {
			p.emit()
			return
		}
	}
}

func (g *gen) productions() []production {
	p := g.p
	return []production{
		{weight: 5, minOps: 1, enabled: p.Int, emit: g.intBinary},
		{weight: 2, minOps: 2, enabled: p.Int && p.DivRem, emit: g.divRem},
		{weight: 2, minOps: 2, enabled: p.Int && p.Bitwise, emit: g.shift},
		{weight: 1, minOps: 1, enabled: p.Int, emit: func() { g.emitConst("i64") }},
		{weight: 5, minOps: 1, enabled: p.Float, emit: g.floatBinary},
		{weight: 2, minOps: 1, enabled: p.Float, emit: g.floatUnary},
		{weight: 1, minOps: 1, enabled: p.Float, emit: func() { g.emitConst("f64") }},
		{weight: 2, minOps: 3, enabled: p.Float && p.Sqrt && p.FastMath, emit: g.rsqrtIdiom},
		{weight: 2, minOps: 2, enabled: p.CmpSelect && p.Int, emit: g.cmpSelectInt},
		{weight: 2, minOps: 2, enabled: p.CmpSelect && p.Float, emit: g.cmpSelectFloat},
		{weight: 1, minOps: 1, enabled: p.Casts && p.Int && p.Float, emit: g.sitofp},
		{weight: 3, minOps: 6, enabled: p.Loops && g.depth < 2, emit: g.forLoop},
		{weight: 2, minOps: 4, enabled: p.If && g.depth < 2, emit: g.ifOp},
		{weight: 5, minOps: 2, enabled: p.Tensors, emit: g.matmulStep},
		{weight: 2, minOps: 1, enabled: p.Tensors, emit: g.tensorMisc},
	}
}

func (g *gen) fastmath() string {
	if g.p.FastMath && g.rng.Intn(3) == 0 {
		return " fastmath<fast>"
	}
	return ""
}

func (g *gen) intBinary() {
	ops := []string{"arith.addi", "arith.subi", "arith.muli", "arith.maxsi", "arith.minsi"}
	if g.p.Bitwise {
		ops = append(ops, "arith.andi", "arith.ori", "arith.xori")
	}
	op := ops[g.rng.Intn(len(ops))]
	name := g.newName()
	g.emit("%s = %s %s, %s : i64", name, op, g.pick("i64"), g.pick("i64"))
	g.define(name, "i64")
}

func (g *gen) divRem() {
	op := "arith.divsi"
	if g.rng.Intn(3) == 0 {
		op = "arith.remsi"
	}
	lhs := g.pick("i64")
	var rhs string
	if g.rng.Intn(4) == 0 {
		rhs = g.pick("i64") // variable divisor: may be zero — defined as 0/x
	} else {
		d := int64(g.rng.Intn(99) + 1)
		if g.p.PowTwoBias && g.rng.Intn(2) == 0 {
			d = 1 << uint(g.rng.Intn(9)+1) // §7.2 rewrite target
		}
		c := g.newName()
		g.emit("%s = arith.constant %d : i64", c, d)
		g.define(c, "i64")
		rhs = c
	}
	name := g.newName()
	g.emit("%s = %s %s, %s : i64", name, op, lhs, rhs)
	g.define(name, "i64")
}

func (g *gen) shift() {
	op := "arith.shli"
	if g.rng.Intn(2) == 0 {
		op = "arith.shrsi"
	}
	c := g.newName()
	g.emit("%s = arith.constant %d : i64", c, g.rng.Intn(63))
	g.define(c, "i64")
	name := g.newName()
	g.emit("%s = %s %s, %s : i64", name, op, g.pick("i64"), c)
	g.define(name, "i64")
}

func (g *gen) floatBinary() {
	ops := []string{"arith.addf", "arith.subf", "arith.mulf", "arith.divf",
		"arith.maximumf", "arith.minimumf"}
	op := ops[g.rng.Intn(len(ops))]
	name := g.newName()
	g.emit("%s = %s %s, %s%s : f64", name, op, g.pick("f64"), g.pick("f64"), g.fastmath())
	g.define(name, "f64")
}

func (g *gen) floatUnary() {
	name := g.newName()
	switch n := g.rng.Intn(3); {
	case n == 0 && g.p.Sqrt:
		g.emit("%s = math.sqrt %s%s : f64", name, g.pick("f64"), g.fastmath())
	case n == 1:
		g.emit("%s = math.absf %s : f64", name, g.pick("f64"))
	default:
		g.emit("%s = arith.negf %s : f64", name, g.pick("f64"))
	}
	g.define(name, "f64")
}

// rsqrtIdiom plants the §7.3 target: fastmath 1.0 / sqrt(x).
func (g *gen) rsqrtIdiom() {
	one := g.newName()
	g.emit("%s = arith.constant 1.0 : f64", one)
	g.define(one, "f64")
	s := g.newName()
	g.emit("%s = math.sqrt %s fastmath<fast> : f64", s, g.pick("f64"))
	g.define(s, "f64")
	r := g.newName()
	g.emit("%s = arith.divf %s, %s fastmath<fast> : f64", r, one, s)
	g.define(r, "f64")
}

var cmpIPreds = []string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
var cmpFPreds = []string{"oeq", "ogt", "oge", "olt", "ole", "one", "ueq", "ult", "ule", "une"}

func (g *gen) cmpSelectInt() {
	c := g.newName()
	g.emit("%s = arith.cmpi %s, %s, %s : i64", c, cmpIPreds[g.rng.Intn(len(cmpIPreds))],
		g.pick("i64"), g.pick("i64"))
	g.define(c, "i1")
	name := g.newName()
	g.emit("%s = arith.select %s, %s, %s : i64", name, c, g.pick("i64"), g.pick("i64"))
	g.define(name, "i64")
}

func (g *gen) cmpSelectFloat() {
	c := g.newName()
	g.emit("%s = arith.cmpf %s, %s, %s : f64", c, cmpFPreds[g.rng.Intn(len(cmpFPreds))],
		g.pick("f64"), g.pick("f64"))
	g.define(c, "i1")
	name := g.newName()
	g.emit("%s = arith.select %s, %s, %s : f64", name, c, g.pick("f64"), g.pick("f64"))
	g.define(name, "f64")
}

func (g *gen) sitofp() {
	name := g.newName()
	g.emit("%s = arith.sitofp %s : i64 to f64", name, g.pick("i64"))
	g.define(name, "f64")
}

// scopeSnapshot records pool lengths so region-local values can be
// dropped when the region closes.
func (g *gen) scopeSnapshot() map[string]int {
	s := make(map[string]int, len(poolTypes))
	for _, t := range poolTypes {
		s[t] = len(g.pools[t])
	}
	return s
}

func (g *gen) scopeRestore(s map[string]int) {
	for _, t := range poolTypes {
		g.pools[t] = g.pools[t][:s[t]]
	}
}

// forLoop emits an scf.for with 1-2 iter_args and a small random body.
// Trip counts include zero (lb >= ub), the defined empty loop.
func (g *gen) forLoop() {
	scalar := "i64"
	if !g.p.Int {
		scalar = "f64"
	}
	nIter := 1 + g.rng.Intn(2)
	iterTypes := make([]string, nIter)
	inits := make([]string, nIter)
	for i := range iterTypes {
		iterTypes[i] = scalar
		if g.p.Int && g.p.Float && g.rng.Intn(3) == 0 {
			iterTypes[i] = "f64"
		}
		inits[i] = g.pick(iterTypes[i])
	}
	lb := g.newName()
	g.emit("%s = arith.constant 0 : index", lb)
	ub := g.newName()
	g.emit("%s = arith.constant %d : index", ub, g.rng.Intn(7)) // 0 => empty loop
	st := g.newName()
	g.emit("%s = arith.constant %d : index", st, 1+g.rng.Intn(2))

	results := make([]string, nIter)
	for i := range results {
		results[i] = g.newName()
	}
	iv := fmt.Sprintf("%%i%d", g.names)
	accs := make([]string, nIter)
	var iterArgs []string
	for i := range accs {
		accs[i] = fmt.Sprintf("%%acc%d_%d", g.names, i)
		iterArgs = append(iterArgs, fmt.Sprintf("%s = %s", accs[i], inits[i]))
	}
	g.body.WriteString(g.indent)
	fmt.Fprintf(&g.body, "%s = scf.for %s = %s to %s step %s iter_args(%s) -> (%s) {\n",
		strings.Join(results, ", "), iv, lb, ub, st,
		strings.Join(iterArgs, ", "), strings.Join(iterTypes, ", "))
	g.budget--

	snap := g.scopeSnapshot()
	outerIndent := g.indent
	g.indent += "  "
	g.depth++
	g.define(iv, "index")
	for i, a := range accs {
		g.define(a, iterTypes[i])
	}
	if g.p.Casts && g.p.Int {
		c := g.newName()
		g.emit("%s = arith.index_cast %s : index to i64", c, iv)
		g.define(c, "i64")
	}
	bodyOps := 2 + g.rng.Intn(3)
	for i := 0; i < bodyOps && g.budget > 0; i++ {
		g.emitRandomOp()
	}
	yields := make([]string, nIter)
	for i := range yields {
		yields[i] = g.pick(iterTypes[i])
	}
	g.body.WriteString(g.indent)
	fmt.Fprintf(&g.body, "scf.yield %s : %s\n", strings.Join(yields, ", "), strings.Join(iterTypes, ", "))
	g.depth--
	g.indent = outerIndent
	g.scopeRestore(snap)
	g.body.WriteString(g.indent)
	g.body.WriteString("}\n")
	for i, r := range results {
		g.define(r, iterTypes[i])
	}
}

// ifOp emits an scf.if with else; each branch computes 0-1 ops then
// yields an in-scope value.
func (g *gen) ifOp() {
	typ := "i64"
	if !g.p.Int {
		typ = "f64"
	}
	cond := g.pick("i1")
	res := g.newName()
	g.body.WriteString(g.indent)
	fmt.Fprintf(&g.body, "%s = scf.if %s -> (%s) {\n", res, cond, typ)
	g.budget--
	outerIndent := g.indent
	g.depth++
	for b := 0; b < 2; b++ {
		snap := g.scopeSnapshot()
		g.indent = outerIndent + "  "
		if g.rng.Intn(2) == 0 && g.budget > 0 {
			g.emitRandomOp()
		}
		g.body.WriteString(g.indent)
		fmt.Fprintf(&g.body, "scf.yield %s : %s\n", g.pick(typ), typ)
		g.scopeRestore(snap)
		g.indent = outerIndent
		if b == 0 {
			g.body.WriteString(g.indent)
			g.body.WriteString("} else {\n")
		}
	}
	g.body.WriteString(g.indent)
	g.body.WriteString("}\n")
	g.depth--
	g.define(res, typ)
}

// matmulStep extends the tensor chain: out = matmul(A, B) into a fresh
// empty tensor — the §7.4 associativity target when chained.
func (g *gen) matmulStep() {
	e := g.newName()
	g.emit("%s = tensor.empty() : %s", e, tensorType)
	r := g.newName()
	g.emit("%s = linalg.matmul ins(%s, %s : %s, %s) outs(%s : %s) -> %s",
		r, g.pick(tensorType), g.pick(tensorType), tensorType, tensorType, e, tensorType, tensorType)
	g.define(r, tensorType)
}

func (g *gen) tensorMisc() {
	switch g.rng.Intn(3) {
	case 0:
		name := g.newName()
		g.emit("%s = tensor.splat %s : %s", name, g.pick("f64"), tensorType)
		g.define(name, tensorType)
	case 1:
		e := g.newName()
		g.emit("%s = tensor.empty() : %s", e, tensorType)
		g.define(e, tensorType)
		name := g.newName()
		g.emit("%s = linalg.fill ins(%s : f64) outs(%s : %s) -> %s",
			name, g.pick("f64"), e, tensorType, tensorType)
		g.define(name, tensorType)
	default:
		i0 := g.newName()
		g.emit("%s = arith.constant %d : index", i0, g.rng.Intn(4))
		g.define(i0, "index")
		i1 := g.newName()
		g.emit("%s = arith.constant %d : index", i1, g.rng.Intn(4))
		g.define(i1, "index")
		name := g.newName()
		g.emit("%s = tensor.extract %s[%s, %s] : %s", name, g.pick(tensorType), i0, i1, tensorType)
		g.define(name, "f64")
	}
}

// pickReturns selects the function results: the most recently defined
// value of each populated scalar/tensor pool, at most two, preferring the
// tensor (the interesting chain) when present.
func (g *gen) pickReturns() (names, types []string) {
	take := func(typ string) {
		if pool := g.pools[typ]; len(pool) > 0 && len(names) < 2 {
			names = append(names, pool[len(pool)-1])
			types = append(types, typ)
		}
	}
	if g.p.Tensors {
		take(tensorType)
	}
	take("i64")
	take("f64")
	if len(names) == 0 {
		// Degenerate budget: return a constant.
		c := g.emitConst("i64")
		names = append(names, c)
		types = append(types, "i64")
	}
	return names, types
}
