package dialegg

import (
	"fmt"
	"strconv"
	"strings"

	"dialegg/internal/egglog"
	"dialegg/internal/egraph"
	"dialegg/internal/sexp"
)

// OpEncoding records how one egglog Op-constructor maps to an MLIR
// operation: the outcome of the preparation phase (§5.1). The parameter
// layout is positional: NumOperands Op parameters, then NumAttrs AttrPair
// parameters, then NumRegions Region parameters, then (optionally) the
// result Type.
type OpEncoding struct {
	// EggName is the egglog function name, possibly with a variadic arity
	// suffix (func_call_3).
	EggName string
	// MLIRName is the corresponding MLIR op name.
	MLIRName string
	// NumOperands, NumAttrs, NumRegions describe the parameter layout.
	NumOperands int
	NumAttrs    int
	NumRegions  int
	// HasResultType records whether the trailing parameter is the result
	// Type.
	HasResultType bool
	// Cost is the declared extraction cost.
	Cost int64
}

// encodingKey identifies an encoding by MLIR name and operand count, so
// variadic variants (func_call_0, func_call_3) coexist.
type encodingKey struct {
	mlirName    string
	numOperands int
}

// Encodings is the registry produced by the preparation phase.
type Encodings struct {
	byKey     map[encodingKey]*OpEncoding
	byEggName map[string]*OpEncoding
	// all lists encodings in discovery order.
	all []*OpEncoding
}

// Lookup finds the encoding for an MLIR op name with the given operand
// count.
func (e *Encodings) Lookup(mlirName string, numOperands int) (*OpEncoding, bool) {
	enc, ok := e.byKey[encodingKey{mlirName, numOperands}]
	return enc, ok
}

// LookupEgg finds an encoding by its egglog function name.
func (e *Encodings) LookupEgg(eggName string) (*OpEncoding, bool) {
	enc, ok := e.byEggName[eggName]
	return enc, ok
}

// All returns every discovered encoding.
func (e *Encodings) All() []*OpEncoding { return e.all }

// preludeOpFunctions are Op-returning prelude functions that are not MLIR
// operation encodings.
var preludeOpFunctions = map[string]bool{"Value": true}

// Prepare scans the program's declared functions for MLIR operation
// encodings (every function whose output sort is Op, §5.1) and installs
// the automatic type-of analysis rule for each encoding that carries a
// result type, so that terms created by rewrites also know their types.
func Prepare(p *egglog.Program) (*Encodings, error) {
	g := p.Graph()
	encs := &Encodings{
		byKey:     make(map[encodingKey]*OpEncoding),
		byEggName: make(map[string]*OpEncoding),
	}

	opSort, ok := g.SortByName("Op")
	if !ok {
		return nil, fmt.Errorf("dialegg: prelude not loaded: sort Op missing")
	}
	attrPairSort, _ := g.SortByName("AttrPair")
	regionSort, _ := g.SortByName("Region")
	typeSort, _ := g.SortByName("Type")

	for _, f := range g.Functions() {
		if f.Out != opSort || preludeOpFunctions[f.Name] {
			continue
		}
		enc := &OpEncoding{EggName: f.Name, Cost: f.Cost}
		valid := true
		stage := 0 // 0=operands, 1=attrs, 2=regions, 3=type
		for _, param := range f.Params {
			switch {
			case param == opSort:
				if stage > 0 {
					valid = false
				}
				enc.NumOperands++
			case param == attrPairSort:
				if stage > 1 {
					valid = false
				}
				stage = 1
				enc.NumAttrs++
			case param == regionSort:
				if stage > 2 {
					valid = false
				}
				stage = 2
				enc.NumRegions++
			case param == typeSort:
				if enc.HasResultType {
					valid = false
				}
				stage = 3
				enc.HasResultType = true
			default:
				valid = false
			}
			if !valid {
				break
			}
		}
		if !valid {
			// Not an op encoding (helper constructor over Op); skip.
			continue
		}
		base, arity := splitAritySuffix(f.Name)
		if arity >= 0 && arity != enc.NumOperands {
			return nil, fmt.Errorf("dialegg: %s: arity suffix %d does not match %d Op parameters", f.Name, arity, enc.NumOperands)
		}
		enc.MLIRName = MLIROpName(base)
		key := encodingKey{enc.MLIRName, enc.NumOperands}
		if prev, dup := encs.byKey[key]; dup {
			return nil, fmt.Errorf("dialegg: duplicate encoding for %s/%d: %s and %s", enc.MLIRName, enc.NumOperands, prev.EggName, f.Name)
		}
		encs.byKey[key] = enc
		encs.byEggName[f.Name] = enc
		encs.all = append(encs.all, enc)

		if enc.HasResultType {
			if err := installTypeOfRule(p, f, enc); err != nil {
				return nil, err
			}
		}
	}
	return encs, nil
}

// splitAritySuffix splits "func_call_3" into ("func_call", 3); names
// without a numeric suffix return arity -1. A single trailing digit group
// is only treated as an arity suffix when preceded by '_' and the prefix
// still contains an underscore (so "arith_addi" stays intact but a
// hypothetical "f_1" splits).
func splitAritySuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '_')
	if i <= 0 || i == len(name)-1 {
		return name, -1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || !strings.Contains(name[:i], "_") {
		return name, -1
	}
	return name[:i], n
}

// installTypeOfRule adds: (rule ((= ?op (f ?a1 ... ?t))) ((set (type-of ?op) ?t)))
func installTypeOfRule(p *egglog.Program, f *egraph.Function, enc *OpEncoding) error {
	pattern := sexp.List(sexp.Symbol(f.Name))
	for i := 0; i < len(f.Params)-1; i++ {
		pattern.List = append(pattern.List, sexp.Symbol(fmt.Sprintf("?a%d", i)))
	}
	pattern.List = append(pattern.List, sexp.Symbol("?t"))
	rule := sexp.List(
		sexp.Symbol("rule"),
		sexp.List(sexp.List(sexp.Symbol("="), sexp.Symbol("?op"), pattern)),
		sexp.List(sexp.List(sexp.Symbol("set"),
			sexp.List(sexp.Symbol("type-of"), sexp.Symbol("?op")),
			sexp.Symbol("?t"))),
		sexp.Symbol(":name"), sexp.String("type-of/"+f.Name),
	)
	_, err := p.Execute([]*sexp.Node{rule})
	return err
}
