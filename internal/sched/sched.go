// Package sched is the engine's adaptive rule-scheduling subsystem: the
// control half of the measure→control loop the per-rule metrics, blame,
// and selectivity profiles feed. A Scheduler decides, per iteration and
// per rule, whether the rule matches this iteration (run), sits it out
// (skip), or matches under a cap (limit N) — the mechanism behind egg's
// BackoffScheduler, which is what keeps one explosive rule (commutativity,
// associativity) from dominating saturation time and e-graph growth.
//
// Determinism is the design constraint everything here bends around: a
// scheduler decision may depend only on the iteration number, the rule's
// identity, and the merged per-iteration statistics the runner reports
// through RecordIter — quantities that are byte-identical for every
// worker count, shard plan, and match mode. Wall time, goroutine order,
// and task-level counts never reach a scheduler, so a scheduled run is as
// reproducible as an unscheduled one.
//
// The package is dependency-free (stdlib only) so the e-graph engine can
// import it without cycles; the engine-side hook lives in
// egraph.RunConfig.Scheduler.
package sched

// Action is what a scheduler tells the runner to do with one rule for one
// iteration.
type Action int

const (
	// ActionRun matches the rule normally (the default; the zero
	// Decision).
	ActionRun Action = iota
	// ActionSkip excludes the rule from the iteration's match plan
	// entirely — no tasks are planned for it, so a skipped rule costs
	// nothing.
	ActionSkip
	// ActionLimit matches the rule but caps how many of its matches are
	// applied this iteration (Decision.Limit). The cap is enforced on the
	// merged, deterministically ordered match list, so the kept prefix is
	// the same for every worker count.
	ActionLimit
)

// String names the action for reports and artifacts.
func (a Action) String() string {
	switch a {
	case ActionSkip:
		return "skip"
	case ActionLimit:
		return "limit"
	default:
		return "run"
	}
}

// Decision is one rule's budget for one iteration.
type Decision struct {
	Action Action
	// Limit is the per-iteration match cap when Action == ActionLimit
	// (<= 0 means unlimited, equivalent to ActionRun).
	Limit int
	// Final marks a decision the scheduler will never revisit (a
	// permanent ban, e.g. a waste-pruned rule). The runner may declare
	// saturation on a no-growth iteration despite final skips; non-final
	// skips suppress saturation, because the decision can change once a
	// ban expires.
	Final bool
}

// RuleStats is the runner-maintained cumulative view of one rule's
// activity across the run so far, passed to RuleBudget each iteration.
// All counts are merged (worker-count-independent) quantities.
type RuleStats struct {
	// Matched is the rule's pre-truncation match total.
	Matched int64
	// Applied is the rule's applied-match total (post any caps).
	Applied int64
	// SkippedIters counts iterations the scheduler skipped the rule.
	SkippedIters int
}

// RuleIterStats is one rule's merged outcome of one iteration, delivered
// to RecordIter after the iteration's apply phase.
type RuleIterStats struct {
	Rule string
	// Matched is the pre-truncation match count (exact: scheduler caps
	// are enforced at merge time, after full enumeration, so this is the
	// number of matches the rule would have applied unscheduled).
	Matched int64
	// Applied is the post-cap applied count.
	Applied int64
	// Skipped reports whether the scheduler skipped the rule.
	Skipped bool
	// Limited reports whether a scheduler cap actually truncated the
	// rule's matches (Applied < Matched because of the cap).
	Limited bool
}

// Instance is the per-run mutable state of a scheduling strategy: the
// runner consults RuleBudget in its serial section before each match
// phase and reports the iteration's merged outcome through RecordIter.
// Both are called from a single goroutine; implementations need no
// locking.
type Instance interface {
	// RuleBudget returns the rule's budget for iteration iter (1-based).
	RuleBudget(rule string, iter int, stats RuleStats) Decision
	// RecordIter delivers the iteration's merged per-rule outcomes in
	// rule-declaration order.
	RecordIter(iter int, stats []RuleIterStats)
}

// Scheduler is a reusable, immutable scheduling strategy. New mints the
// mutable per-run state, so one Scheduler value can bound many runs (the
// optimizer saturates once per function) without state leaking between
// them; Fingerprint is the strategy's canonical identity, which result
// caches fold into their content address (a scheduler changes results, so
// two runs share a cache entry only when their schedules agree).
type Scheduler interface {
	New() Instance
	Fingerprint() string
}

// Simple is the default strategy: every rule runs unthrottled every
// iteration — bit-identical to running with no scheduler at all.
type Simple struct{}

// New implements Scheduler.
func (Simple) New() Instance { return simpleInstance{} }

// Fingerprint implements Scheduler.
func (Simple) Fingerprint() string { return "simple" }

type simpleInstance struct{}

func (simpleInstance) RuleBudget(string, int, RuleStats) Decision { return Decision{} }
func (simpleInstance) RecordIter(int, []RuleIterStats)            {}
