package mlir

import "testing"

// fuzzRegistry registers a minimal op so the fuzzer can reach deeper
// parser states without importing the dialects package (import cycle).
func fuzzRegistry() *Registry {
	r := NewRegistry()
	r.Register(&OpDef{
		Name: "t.ret",
		Parse: func(p *Parser, st *OpParseState) (*Operation, error) {
			return NewOperation("t.ret", nil, nil), nil
		},
	})
	return r
}

// FuzzParseModule: the MLIR parser must never panic, and accepted modules
// must print and re-parse.
func FuzzParseModule(f *testing.F) {
	seeds := []string{
		"func.func @f() { func.return }",
		`%r = "a.b"(%x) : (i64) -> i64`,
		"module { }",
		"func.func @g(%x: tensor<3x?xf64>) -> f32 { }",
		`"d.o"() ({ "d.i"() : () -> () }) {k = 1 : i64} : () -> ()`,
		"%0 = arith.constant dense<1.5> : tensor<2xf64>",
		"t.ret",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	reg := fuzzRegistry()
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule(src, reg)
		if err != nil {
			return
		}
		printed := PrintModule(m, reg)
		if _, err := ParseModule(printed, reg); err != nil {
			t.Fatalf("printed module does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
	})
}
