// RULES: matmul
// §7.4: the 270,000-multiplication bracketing becomes the 20,000 one.
func.func @two_mm(%A: tensor<100x10xf64>, %B: tensor<10x150xf64>, %C: tensor<150x8xf64>) -> tensor<100x8xf64> {
  %e1 = tensor.empty() : tensor<100x150xf64>
  %AB = linalg.matmul ins(%A, %B : tensor<100x10xf64>, tensor<10x150xf64>) outs(%e1 : tensor<100x150xf64>) -> tensor<100x150xf64>
  %e2 = tensor.empty() : tensor<100x8xf64>
  %r = linalg.matmul ins(%AB, %C : tensor<100x150xf64>, tensor<150x8xf64>) outs(%e2 : tensor<100x8xf64>) -> tensor<100x8xf64>
  func.return %r : tensor<100x8xf64>
}
