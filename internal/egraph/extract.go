package egraph

import (
	"fmt"
	"math"
	"sort"

	"dialegg/internal/sexp"
)

// Extractor selects the cheapest term represented by each e-class using a
// bottom-up fixed-point over node costs. Node cost = the constructor's
// default cost (or the per-node `unstable-cost` override) plus the cost of
// every child e-class; primitive children are free; vector children cost
// the sum of their element classes. Because every node cost is >= 1, the
// chosen term is always finite (a node is strictly more expensive than any
// of its children, so no class can select a cycle through itself).
type Extractor struct {
	g *EGraph
	// bestCost maps canonical class ID -> cheapest known cost.
	bestCost map[uint32]int64
	// bestNode maps canonical class ID -> (function, row index) of the
	// chosen e-node.
	bestNode map[uint32]nodeRef
}

type nodeRef struct {
	fn  *Function
	row int
}

// NewExtractor computes best costs for every e-class currently in g. The
// graph must be rebuilt (congruent) for the results to be meaningful.
func NewExtractor(g *EGraph) *Extractor {
	e := &Extractor{
		g:        g,
		bestCost: make(map[uint32]int64),
		bestNode: make(map[uint32]nodeRef),
	}
	e.run()
	return e
}

func (e *Extractor) run() {
	g := e.g
	for changed := true; changed; {
		changed = false
		for _, f := range g.funcs {
			if !f.IsConstructor() || f.Unextractable {
				continue
			}
			for ri := range f.table.rows {
				r := &f.table.rows[ri]
				if r.dead {
					continue
				}
				cost, ok := e.nodeCost(f, r)
				if !ok {
					continue
				}
				cls := g.uf.Find(uint32(g.Find(r.out).Bits))
				if best, seen := e.bestCost[cls]; !seen || cost < best {
					e.bestCost[cls] = cost
					e.bestNode[cls] = nodeRef{fn: f, row: ri}
					changed = true
				}
			}
		}
	}
}

// nodeCost returns the total cost of the e-node at row r of f, or false if
// some child class has no known cost yet.
func (e *Extractor) nodeCost(f *Function, r *row) (int64, bool) {
	base := f.Cost
	if f.costTable != nil {
		// Row args are not guaranteed canonical between rebuilds; the cost
		// table is canonicalized during Rebuild, so canonicalize the key.
		canon := make([]Value, len(r.args))
		for i, a := range r.args {
			canon[i] = e.g.Find(a)
		}
		if c, ok := f.costTable[argsKey(canon)]; ok {
			base = c
		}
	}
	total := base
	for _, a := range r.args {
		c, ok := e.valueCost(a)
		if !ok {
			return 0, false
		}
		total += c
		if total < 0 { // overflow guard
			total = math.MaxInt64 / 2
		}
	}
	return total, true
}

func (e *Extractor) valueCost(v Value) (int64, bool) {
	switch v.Sort.Kind {
	case KindEq:
		cls := e.g.uf.Find(uint32(v.Bits))
		c, ok := e.bestCost[cls]
		return c, ok
	case KindVec:
		var total int64
		for _, el := range e.g.VecElems(v) {
			c, ok := e.valueCost(el)
			if !ok {
				return 0, false
			}
			total += c
		}
		return total, true
	default:
		return 0, true
	}
}

// CostOf returns the cheapest cost of the class of v (which must be an
// eq-sort value), or false if the class contains no extractable node.
func (e *Extractor) CostOf(v Value) (int64, bool) {
	if v.Sort.Kind != KindEq {
		return 0, true
	}
	c, ok := e.bestCost[e.g.uf.Find(uint32(v.Bits))]
	return c, ok
}

// Extract returns the cheapest term of v's class rendered as an
// s-expression, along with its cost.
func (e *Extractor) Extract(v Value) (*sexp.Node, int64, error) {
	n, err := e.term(v)
	if err != nil {
		return nil, 0, err
	}
	c, _ := e.CostOf(v)
	return n, c, nil
}

// Variant is one alternative representation of an e-class.
type Variant struct {
	Term *sexp.Node
	Cost int64
}

// ExtractVariants returns up to n distinct terms of v's class, cheapest
// first (egglog's `extract :variants`): each live e-node of the root class
// is rendered with cost-optimal children, then deduplicated. Only the root
// node varies; exhaustively enumerating child combinations would be
// exponential.
func (e *Extractor) ExtractVariants(v Value, n int) ([]Variant, error) {
	if v.Sort.Kind != KindEq {
		t, c, err := e.Extract(v)
		if err != nil {
			return nil, err
		}
		return []Variant{{Term: t, Cost: c}}, nil
	}
	g := e.g
	cls := g.uf.Find(uint32(v.Bits))
	seen := make(map[string]bool)
	var out []Variant
	for _, f := range g.funcs {
		if !f.IsConstructor() || f.Unextractable {
			continue
		}
		for ri := range f.table.rows {
			r := &f.table.rows[ri]
			if r.dead || g.uf.Find(uint32(g.Find(r.out).Bits)) != cls {
				continue
			}
			cost, ok := e.nodeCost(f, r)
			if !ok {
				continue // unextractable children
			}
			term := sexp.List(sexp.Symbol(f.Name))
			bad := false
			for _, a := range r.args {
				t, err := e.term(a)
				if err != nil {
					bad = true
					break
				}
				term.List = append(term.List, t)
			}
			if bad {
				continue
			}
			key := term.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Variant{Term: term, Cost: cost})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Term.String() < out[j].Term.String()
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("egraph: class has no extractable variants")
	}
	return out, nil
}

func (e *Extractor) term(v Value) (*sexp.Node, error) {
	g := e.g
	switch v.Sort.Kind {
	case KindI64:
		return sexp.Int(v.AsI64()), nil
	case KindF64:
		return sexp.Float(v.AsF64()), nil
	case KindString:
		return sexp.String(g.StringOf(v)), nil
	case KindBool:
		if v.AsBool() {
			return sexp.Symbol("true"), nil
		}
		return sexp.Symbol("false"), nil
	case KindVec:
		out := sexp.List(sexp.Symbol("vec-of"))
		for _, el := range g.VecElems(v) {
			t, err := e.term(el)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, t)
		}
		return out, nil
	case KindEq:
		cls := g.uf.Find(uint32(v.Bits))
		ref, ok := e.bestNode[cls]
		if !ok {
			return nil, fmt.Errorf("egraph: class %d of sort %s has no extractable term", cls, v.Sort)
		}
		r := &ref.fn.table.rows[ref.row]
		out := sexp.List(sexp.Symbol(ref.fn.Name))
		for _, a := range r.args {
			t, err := e.term(a)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, t)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("egraph: cannot extract value of sort %s", v.Sort)
	}
}
