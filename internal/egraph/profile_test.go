package egraph

// Tests for the saturation profiler's engine half: sampled premise
// selectivity (RunConfig.ProfileSample) and extraction blame analysis.
// The load-bearing property is determinism — sampling is keyed to global
// row indices, so the counters must be byte-identical at every worker and
// shard count, and turning sampling on must not change the graph.

import (
	"encoding/json"
	"testing"
)

// runSelectivity saturates a fresh chain graph under one worker/shard
// configuration and returns the marshaled selectivity section.
func runSelectivity(t *testing.T, naive bool, workers, shards, sample int) ([]byte, RunReport) {
	t.Helper()
	l, rules := buildChainGraph()
	rep := l.g.Run(rules, RunConfig{
		IterLimit:     4,
		Workers:       workers,
		MatchShards:   shards,
		ProfileSample: sample,
		Naive:         naive,
	})
	b, err := json.Marshal(rep.Selectivity)
	if err != nil {
		t.Fatal(err)
	}
	return b, rep
}

// TestSelectivityWorkerIndependent: the sampled counters are byte-identical
// for every worker and shard count, in both match modes and at several
// sampling periods — the profile-artifact determinism guarantee rests on
// this.
func TestSelectivityWorkerIndependent(t *testing.T) {
	for _, naive := range []bool{false, true} {
		for _, sample := range []int{1, 3} {
			ref, refRep := runSelectivity(t, naive, 1, 1, sample)
			for _, cfg := range [][2]int{{2, 2}, {4, 8}, {3, 16}} {
				got, gotRep := runSelectivity(t, naive, cfg[0], cfg[1], sample)
				if string(got) != string(ref) {
					t.Errorf("naive=%v sample=%d: selectivity differs at workers=%d shards=%d:\nref %s\ngot %s",
						naive, sample, cfg[0], cfg[1], ref, got)
				}
				if gotRep.Nodes != refRep.Nodes || gotRep.Iterations != refRep.Iterations {
					t.Errorf("naive=%v sample=%d: run outcome differs at workers=%d shards=%d", naive, sample, cfg[0], cfg[1])
				}
			}
		}
	}
}

// TestSelectivityInvariants: the counters satisfy their cross-field
// contracts — matches never exceed visits, table premises attribute every
// execution to exactly one access path, bound-column counts never exceed
// executions, and a positive sampling period on a scanning workload
// samples roots.
func TestSelectivityInvariants(t *testing.T) {
	_, rep := runSelectivity(t, false, 2, 4, 2)
	if len(rep.Selectivity) == 0 {
		t.Fatal("no selectivity collected")
	}
	var roots int64
	for _, rs := range rep.Selectivity {
		if rs.SampleEvery != 2 {
			t.Errorf("rule %s: sample_every = %d, want 2", rs.Rule, rs.SampleEvery)
		}
		roots += rs.SampledRoots
		for _, ps := range rs.Premises {
			if ps.Matches > ps.Visits {
				t.Errorf("rule %s premise %d: matches %d > visits %d", rs.Rule, ps.Index, ps.Matches, ps.Visits)
			}
			paths := ps.Lookups + ps.IndexProbes + ps.FullScans + ps.DeltaScans
			switch ps.Kind {
			case "table":
				if paths != ps.Execs {
					t.Errorf("rule %s premise %d: access paths %d != execs %d", rs.Rule, ps.Index, paths, ps.Execs)
				}
			case "eval":
				if paths != 0 {
					t.Errorf("rule %s premise %d: eval premise has access paths", rs.Rule, ps.Index)
				}
			}
			for col, n := range ps.BoundCols {
				if n > ps.Execs {
					t.Errorf("rule %s premise %d col %d: bound %d > execs %d", rs.Rule, ps.Index, col, n, ps.Execs)
				}
			}
		}
	}
	if roots == 0 {
		t.Error("sampling on a scanning workload collected zero roots")
	}
}

// TestProfileSampleOffPath: ProfileSample 0 collects nothing, and enabling
// it changes neither the resulting graph nor the work the run does.
func TestProfileSampleOffPath(t *testing.T) {
	run := func(sample int) ([]byte, RunReport) {
		l, rules := buildChainGraph()
		rep := l.g.Run(rules, RunConfig{IterLimit: 4, Workers: 2, ProfileSample: sample})
		snap, err := json.Marshal(l.g.Snapshot(0))
		if err != nil {
			t.Fatal(err)
		}
		return snap, rep
	}
	offSnap, offRep := run(0)
	if offRep.Selectivity != nil {
		t.Errorf("ProfileSample=0 collected selectivity")
	}
	onSnap, onRep := run(2)
	if len(onRep.Selectivity) == 0 {
		t.Errorf("ProfileSample=2 collected nothing")
	}
	if string(offSnap) != string(onSnap) {
		t.Error("enabling ProfileSample changed the resulting graph")
	}
	if offRep.RowsScanned != onRep.RowsScanned || offRep.Iterations != onRep.Iterations {
		t.Error("enabling ProfileSample changed the run's work")
	}
}

// TestMergeSelectivity: merging is summation by rule name — folding a
// section into itself doubles every counter.
func TestMergeSelectivity(t *testing.T) {
	_, rep := runSelectivity(t, false, 1, 1, 1)
	merged := MergeSelectivity(nil, rep.Selectivity)
	merged = MergeSelectivity(merged, rep.Selectivity)
	if len(merged) != len(rep.Selectivity) {
		t.Fatalf("merged %d rules, want %d", len(merged), len(rep.Selectivity))
	}
	for i, rs := range rep.Selectivity {
		m := merged[i]
		if m.Rule != rs.Rule || m.SampledRoots != 2*rs.SampledRoots {
			t.Errorf("rule %s: merged roots %d, want %d", rs.Rule, m.SampledRoots, 2*rs.SampledRoots)
		}
		for j, ps := range rs.Premises {
			if m.Premises[j].Visits != 2*ps.Visits || m.Premises[j].Matches != 2*ps.Matches {
				t.Errorf("rule %s premise %d: merge did not sum", rs.Rule, j)
			}
		}
	}
}

// TestBlameClassification: a three-rule workload with a known verdict for
// every row. Seed: root = Mul(Num 1, Num 2). Rule mul-to-add unions the
// root with the cheaper Add(x,y) — its row is chosen by extraction. Rule
// wasteful inserts Div(x,y) into a fresh class nothing reaches — pure
// waste. The seed Mul row stays in the (reachable) root class but loses to
// the Add node — rejected.
func TestBlameClassification(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	root, _ := g.Insert(l.Mul, a, b)

	mulToAdd := &Rule{
		Name: "mul-to-add",
		Premises: []Premise{
			&TablePremise{Fn: l.Mul, Args: []Atom{VarAtom(0), VarAtom(1)}, Out: VarAtom(2)},
		},
		Actions: []Action{
			&UnionAction{
				A: &ATerm{Kind: AVar, Slot: 2},
				B: &ATerm{Kind: AApp, Fn: l.Add, Args: []*ATerm{{Kind: AVar, Slot: 0}, {Kind: AVar, Slot: 1}}},
			},
		},
		NumSlots: 3,
	}
	wasteful := &Rule{
		Name: "wasteful",
		Premises: []Premise{
			&TablePremise{Fn: l.Mul, Args: []Atom{VarAtom(0), VarAtom(1)}, Out: VarAtom(2)},
		},
		Actions: []Action{
			&InsertAction{T: &ATerm{Kind: AApp, Fn: l.Div, Args: []*ATerm{{Kind: AVar, Slot: 0}, {Kind: AVar, Slot: 1}}}},
		},
		NumSlots: 3,
	}
	rep := g.Run([]*Rule{mulToAdd, wasteful}, RunConfig{IterLimit: 10})
	if !rep.Saturated() {
		t.Fatalf("stop = %s, want saturated", rep.Stop)
	}

	ex := NewExtractor(g)
	blame, err := ex.Blame([]Value{root})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]BlameRow{
		"(seed)":     {Rule: "(seed)", Rows: 3, Extracted: 2, Rejected: 1},
		"mul-to-add": {Rule: "mul-to-add", Rows: 1, Extracted: 1},
		"wasteful":   {Rule: "wasteful", Rows: 1, Waste: 1, WasteRatio: 1},
	}
	if len(blame) != len(want) {
		t.Fatalf("blame rows: got %d, want %d: %+v", len(blame), len(want), blame)
	}
	for _, br := range blame {
		w, ok := want[br.Rule]
		if !ok {
			t.Errorf("unexpected blame rule %q: %+v", br.Rule, br)
			continue
		}
		if br != w {
			t.Errorf("blame[%s] = %+v, want %+v", br.Rule, br, w)
		}
	}

	// MergeBlame is summation by rule: folding the result into itself
	// doubles the counts and preserves every ratio.
	merged := MergeBlame(MergeBlame(nil, blame), blame)
	for i, br := range blame {
		m := merged[i]
		if m.Rows != 2*br.Rows || m.Waste != 2*br.Waste || m.WasteRatio != br.WasteRatio {
			t.Errorf("merge[%s] = %+v, want doubled %+v", br.Rule, m, br)
		}
	}
}

// TestRowsCreatedAttribution: RuleMetrics growth attribution — the rule
// that inserts rows gets them, the rule that only unions gets the unions.
func TestRowsCreatedAttribution(t *testing.T) {
	l := newExprLangQuiet()
	g := l.g
	a, _ := g.Insert(l.Num, I64Value(g.I64, 1))
	b, _ := g.Insert(l.Num, I64Value(g.I64, 2))
	g.Insert(l.Mul, a, b)
	rep := g.Run([]*Rule{commRule(l.Mul)}, RunConfig{IterLimit: 10, RuleMetrics: true})
	if !rep.Saturated() {
		t.Fatalf("stop = %s, want saturated", rep.Stop)
	}
	rs := rep.Rules[0]
	// comm inserts Mul(b,a) — one new row — and unions it with Mul(a,b).
	if rs.RowsCreated < 1 {
		t.Errorf("RowsCreated = %d, want >= 1", rs.RowsCreated)
	}
	if rs.UnionsMade < 1 {
		t.Errorf("UnionsMade = %d, want >= 1", rs.UnionsMade)
	}
}
