package egraph

import (
	"testing"
)

// exprLang builds the little arithmetic language from §2.3 of the paper:
// Num, Var, Add, Mul, Div, Shl over an Expr eq-sort.
type exprLang struct {
	g                            *EGraph
	Expr                         *Sort
	Num, Var, Add, Mul, Div, Shl *Function
}

func newExprLang(t testing.TB) *exprLang {
	t.Helper()
	g := New()
	expr, err := g.AddEqSort("Expr")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cost int64, params ...*Sort) *Function {
		f, err := g.DeclareFunction(&Function{Name: name, Params: params, Out: expr, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	l := &exprLang{g: g, Expr: expr}
	l.Num = mk("Num", 1, g.I64)
	l.Var = mk("Var", 1, g.Str)
	l.Add = mk("Add", 1, expr, expr)
	l.Mul = mk("Mul", 2, expr, expr)
	l.Div = mk("Div", 2, expr, expr)
	l.Shl = mk("Shl", 1, expr, expr)
	return l
}

func (l *exprLang) num(t testing.TB, v int64) Value {
	t.Helper()
	val, err := l.g.Insert(l.Num, I64Value(l.g.I64, v))
	if err != nil {
		t.Fatal(err)
	}
	return val
}

func (l *exprLang) app(t testing.TB, f *Function, args ...Value) Value {
	t.Helper()
	val, err := l.g.Insert(f, args...)
	if err != nil {
		t.Fatal(err)
	}
	return val
}

func TestInsertHashCons(t *testing.T) {
	l := newExprLang(t)
	a := l.num(t, 2)
	b := l.num(t, 2)
	if a.Bits != b.Bits {
		t.Errorf("identical nodes got distinct classes: %d vs %d", a.Bits, b.Bits)
	}
	c := l.num(t, 3)
	if a.Bits == c.Bits {
		t.Error("distinct nodes share a class")
	}
	if got := l.g.NumNodes(); got != 2 {
		t.Errorf("NumNodes = %d, want 2", got)
	}
}

func TestUnionAndFind(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	a := l.num(t, 1)
	b := l.num(t, 2)
	if g.Eq(a, b) {
		t.Fatal("distinct classes Eq before union")
	}
	if _, err := g.Union(a, b); err != nil {
		t.Fatal(err)
	}
	if !g.Eq(a, b) {
		t.Error("classes not Eq after union")
	}
}

// TestCongruence checks upward merging: if x ~ y then f(x) ~ f(y) after
// Rebuild.
func TestCongruence(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	x := l.num(t, 1)
	y := l.num(t, 2)
	two := l.num(t, 3)
	fx := l.app(t, l.Mul, x, two)
	fy := l.app(t, l.Mul, y, two)
	if g.Eq(fx, fy) {
		t.Fatal("parents equal before child union")
	}
	if _, err := g.Union(x, y); err != nil {
		t.Fatal(err)
	}
	g.Rebuild()
	if !g.Eq(fx, fy) {
		t.Error("congruence not restored: Mul(x,2) != Mul(y,2) after x~y")
	}
	// The two rows must have collapsed into one live node.
	live := 0
	g.ForEachRow(l.Mul, func(args []Value, out Value) bool { live++; return true })
	if live != 1 {
		t.Errorf("live Mul rows = %d, want 1", live)
	}
}

// TestCongruenceChain exercises multi-level congruence propagation.
func TestCongruenceChain(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	a := l.num(t, 1)
	b := l.num(t, 2)
	fa := l.app(t, l.Shl, a, a)
	fb := l.app(t, l.Shl, b, b)
	ffa := l.app(t, l.Add, fa, fa)
	ffb := l.app(t, l.Add, fb, fb)
	if _, err := g.Union(a, b); err != nil {
		t.Fatal(err)
	}
	g.Rebuild()
	if !g.Eq(fa, fb) || !g.Eq(ffa, ffb) {
		t.Error("two-level congruence failed")
	}
}

func TestInsertAfterUnionDedups(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	a := l.num(t, 1)
	b := l.num(t, 2)
	g.Union(a, b)
	g.Rebuild()
	// Inserting Mul(a, a) and Mul(b, b) must now be the same node.
	m1 := l.app(t, l.Mul, a, a)
	m2 := l.app(t, l.Mul, b, b)
	if !g.Eq(m1, m2) {
		t.Error("insert after union did not dedup congruent nodes")
	}
}

func TestPrimitiveTableSetLookup(t *testing.T) {
	g := New()
	ty, _ := g.AddEqSort("Type")
	nrows, err := g.DeclareFunction(&Function{Name: "nrows", Params: []*Sort{ty}, Out: g.I64})
	if err != nil {
		t.Fatal(err)
	}
	mkTy, _ := g.DeclareFunction(&Function{Name: "T", Params: []*Sort{g.I64}, Out: ty, Cost: 1})
	t1, _ := g.Insert(mkTy, I64Value(g.I64, 7))
	if _, ok := g.Lookup(nrows, t1); ok {
		t.Fatal("lookup before set should fail")
	}
	if err := g.Set(nrows, []Value{t1}, I64Value(g.I64, 7)); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Lookup(nrows, t1)
	if !ok || v.AsI64() != 7 {
		t.Fatalf("lookup = %v,%v want 7,true", v.AsI64(), ok)
	}
	// Setting the same value again is fine (must-equal merge).
	if err := g.Set(nrows, []Value{t1}, I64Value(g.I64, 7)); err != nil {
		t.Fatal(err)
	}
	// A conflicting set errors.
	if err := g.Set(nrows, []Value{t1}, I64Value(g.I64, 8)); err == nil {
		t.Error("conflicting Set should error with MergeMustEqual")
	}
}

func TestPrimitiveTableMergeAcrossUnion(t *testing.T) {
	g := New()
	ty, _ := g.AddEqSort("Type")
	mkTy, _ := g.DeclareFunction(&Function{Name: "T", Params: []*Sort{g.I64}, Out: ty, Cost: 1})
	cost, _ := g.DeclareFunction(&Function{Name: "c", Params: []*Sort{ty}, Out: g.I64, Merge: MergeMinI64})
	t1, _ := g.Insert(mkTy, I64Value(g.I64, 1))
	t2, _ := g.Insert(mkTy, I64Value(g.I64, 2))
	g.Set(cost, []Value{t1}, I64Value(g.I64, 10))
	g.Set(cost, []Value{t2}, I64Value(g.I64, 3))
	g.Union(t1, t2)
	g.Rebuild()
	v, ok := g.Lookup(cost, t1)
	if !ok || v.AsI64() != 3 {
		t.Errorf("after union, min-merged cost = %v,%v; want 3,true", v.AsI64(), ok)
	}
}

func TestVecInterningAndCanonicalization(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	vs := g.VecSortOf(l.Expr)
	a := l.num(t, 1)
	b := l.num(t, 2)
	v1 := g.InternVec(vs, []Value{a, b})
	v2 := g.InternVec(vs, []Value{a, b})
	if v1.Bits != v2.Bits {
		t.Error("identical vecs not interned to one value")
	}
	c := l.num(t, 3)
	v3 := g.InternVec(vs, []Value{a, c})
	if v1.Bits == v3.Bits {
		t.Error("distinct vecs interned to one value")
	}
	// After b ~ c, the canonical forms of v1 and v3 must coincide.
	g.Union(b, c)
	g.Rebuild()
	if g.Find(v1).Bits != g.Find(v3).Bits {
		t.Error("vec canonicalization after union failed")
	}
}

// TestVecChildCongruence: nodes that take vectors as children must merge
// when their vector contents become equal.
func TestVecChildCongruence(t *testing.T) {
	l := newExprLang(t)
	g := l.g
	vs := g.VecSortOf(l.Expr)
	blk, err := g.DeclareFunction(&Function{Name: "Blk", Params: []*Sort{vs}, Out: l.Expr, Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := l.num(t, 1)
	b := l.num(t, 2)
	v1 := g.InternVec(vs, []Value{a})
	v2 := g.InternVec(vs, []Value{b})
	n1 := l.app(t, blk, v1)
	n2 := l.app(t, blk, v2)
	if g.Eq(n1, n2) {
		t.Fatal("distinct blocks equal too early")
	}
	g.Union(a, b)
	g.Rebuild()
	if !g.Eq(n1, n2) {
		t.Error("blocks over congruent vectors did not merge")
	}
}

func TestStringInterning(t *testing.T) {
	g := New()
	a := g.InternString("hello")
	b := g.InternString("hello")
	c := g.InternString("world")
	if a.Bits != b.Bits {
		t.Error("same string interned twice")
	}
	if a.Bits == c.Bits {
		t.Error("distinct strings collided")
	}
	if g.StringOf(a) != "hello" {
		t.Errorf("StringOf = %q", g.StringOf(a))
	}
}

func TestDeclareErrors(t *testing.T) {
	g := New()
	if _, err := g.AddEqSort("i64"); err == nil {
		t.Error("redeclaring builtin sort should fail")
	}
	e, _ := g.AddEqSort("E")
	if _, err := g.AddEqSort("E"); err == nil {
		t.Error("duplicate sort should fail")
	}
	if _, err := g.DeclareFunction(&Function{Name: "f", Params: nil, Out: e}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.DeclareFunction(&Function{Name: "f", Params: nil, Out: e}); err == nil {
		t.Error("duplicate function should fail")
	}
}

func TestInsertArityAndSortChecks(t *testing.T) {
	l := newExprLang(t)
	a := l.num(t, 1)
	if _, err := l.g.Insert(l.Add, a); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := l.g.Insert(l.Num, a); err == nil {
		t.Error("wrong sort accepted")
	}
}

func TestUnionAcrossSortsFails(t *testing.T) {
	g := New()
	s1, _ := g.AddEqSort("A")
	s2, _ := g.AddEqSort("B")
	f1, _ := g.DeclareFunction(&Function{Name: "a", Out: s1, Cost: 1})
	f2, _ := g.DeclareFunction(&Function{Name: "b", Out: s2, Cost: 1})
	v1, _ := g.Insert(f1)
	v2, _ := g.Insert(f2)
	if _, err := g.Union(v1, v2); err == nil {
		t.Error("union across sorts should fail")
	}
}
