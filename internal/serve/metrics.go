package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is the sliding-sample size the latency quantiles are
// computed over. Big enough to make p99 meaningful, small enough that a
// quantile read (copy + sort under the lock) stays cheap.
const latencyWindow = 2048

// metrics holds the service counters. Counters are atomics (incremented
// on hot paths); the latency ring is mutex-guarded because observation
// and quantile reads need consistency.
type metrics struct {
	requests     atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	runs         atomic.Uint64
	errors       atomic.Uint64
	canceled     atomic.Uint64
	stopCanceled atomic.Uint64
	queueFull    atomic.Uint64
	inflight     atomic.Int64

	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	pos   int
	count int
}

// observe records one request's latency in the sliding window.
func (m *metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.ring[m.pos] = d
	m.pos = (m.pos + 1) % latencyWindow
	if m.count < latencyWindow {
		m.count++
	}
	m.mu.Unlock()
}

// quantiles returns the q-quantiles (0..1, ascending) of the window in
// one sort. Returns zeros when nothing has been observed.
func (m *metrics) quantiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	m.mu.Lock()
	n := m.count
	sample := make([]time.Duration, n)
	copy(sample, m.ring[:n])
	m.mu.Unlock()
	if n == 0 {
		return out
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	for i, q := range qs {
		// Ceiling index so high quantiles report the tail even at small n
		// (p99 of two samples is the max, not the min).
		idx := int(math.Ceil(q * float64(n-1)))
		out[i] = sample[idx]
	}
	return out
}
