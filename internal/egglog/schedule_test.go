package egglog

import (
	"testing"
)

// TestRulesetIsolation: rules in a named ruleset do not fire during a
// plain (run ...).
func TestRulesetIsolation(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(ruleset cleanup)
(rewrite (Mul ?x (Num 1)) ?x :ruleset cleanup)
(let e (Mul (Var "a") (Num 1)))
(run 5)
`)
	holds, err := p.Check(mustParseFacts(t, `(= e (Var "a"))`))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("ruleset rule fired during default run")
	}
	mustExec(t, p, `(run-schedule (run cleanup 5)) (check (= e (Var "a")))`)
}

// TestRunScheduleSaturate: (saturate ...) repeats until fixpoint.
func TestRunScheduleSaturate(t *testing.T) {
	p := NewProgram()
	res := mustExec(t, p, exprPrelude+`
(ruleset fold)
(rewrite (Add (Num ?x) (Num ?y)) (Num (+ ?x ?y)) :ruleset fold)
(let e (Add (Add (Add (Num 1) (Num 2)) (Num 3)) (Num 4)))
(run-schedule (saturate fold))
(check (= e (Num 10)))
`)
	for _, r := range res {
		if r.Command == "run-schedule" && r.Report.Iterations < 2 {
			t.Errorf("saturate should need multiple passes, got %d", r.Report.Iterations)
		}
	}
}

// TestRunScheduleSeqAndRepeat: staged scheduling composes; an expansion
// stage runs a bounded number of times before a cleanup stage.
func TestRunScheduleSeqRepeat(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(ruleset expand)
(ruleset cleanup)
; expansion: a => a*1 (grows the graph each round)
(rewrite (Var ?n) (Mul (Var ?n) (Num 1)) :ruleset expand)
; cleanup: a*1 => a
(rewrite (Mul ?x (Num 1)) ?x :ruleset cleanup)
(let e (Var "a"))
(run-schedule (seq (repeat 2 (run expand 1)) (saturate cleanup)))
(check (= e (Mul (Var "a") (Num 1))))
`)
}

// TestRunScheduleUnknownRuleset errors cleanly.
func TestRunScheduleUnknownRuleset(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude)
	if _, err := p.ExecuteString(`(run-schedule (run ghost 1))`); err == nil {
		t.Error("unknown ruleset accepted")
	}
	if _, err := p.ExecuteString(`(rewrite (Num ?x) (Num ?x) :ruleset ghost)`); err == nil {
		t.Error("rule filed under undeclared ruleset")
	}
	if _, err := p.ExecuteString(`(ruleset rs) (ruleset rs)`); err == nil {
		t.Error("duplicate ruleset accepted")
	}
}

// TestBareRulesetNameInSchedule: a bare symbol runs that ruleset once.
func TestBareRulesetNameInSchedule(t *testing.T) {
	p := NewProgram()
	mustExec(t, p, exprPrelude+`
(ruleset fold)
(rewrite (Add (Num ?x) (Num ?y)) (Num (+ ?x ?y)) :ruleset fold)
(let e (Add (Num 1) (Num 2)))
(run-schedule fold)
(check (= e (Num 3)))
`)
}
