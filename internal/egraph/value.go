// Package egraph implements the equality-saturation engine underlying the
// egglog dialect interpreter.
//
// The design follows egglog's relational model: every user-declared function
// is a table mapping argument tuples to an output value. Functions whose
// output sort is an equivalence sort ("eq-sort") are term constructors and
// their outputs are e-class IDs managed by a union-find; functions with a
// primitive output sort (i64, f64, String, bool, vectors) are ordinary
// tables updated with Set. Congruence closure is restored by Rebuild, which
// re-canonicalizes every table row and merges rows that collide.
package egraph

import (
	"fmt"
	"math"
	"sync"
)

// SortKind discriminates the kinds of sorts known to the engine.
type SortKind uint8

// The available sort kinds.
const (
	// KindEq is a user-declared equivalence sort: values are e-class IDs
	// subject to union.
	KindEq SortKind = iota
	// KindI64 is the builtin 64-bit integer primitive.
	KindI64
	// KindF64 is the builtin 64-bit float primitive.
	KindF64
	// KindString is the builtin string primitive (interned).
	KindString
	// KindBool is the builtin boolean primitive.
	KindBool
	// KindVec is a vector of values of the element sort (hash-consed).
	KindVec
	// KindUnit is the output sort of functions used purely as relations.
	KindUnit
)

func (k SortKind) String() string {
	switch k {
	case KindEq:
		return "eqsort"
	case KindI64:
		return "i64"
	case KindF64:
		return "f64"
	case KindString:
		return "String"
	case KindBool:
		return "bool"
	case KindVec:
		return "Vec"
	case KindUnit:
		return "Unit"
	default:
		return fmt.Sprintf("SortKind(%d)", uint8(k))
	}
}

// Sort describes a value domain. Sorts are created once per EGraph and
// compared by pointer identity.
type Sort struct {
	Name string
	Kind SortKind
	// Elem is the element sort for KindVec sorts, nil otherwise.
	Elem *Sort
}

func (s *Sort) String() string { return s.Name }

// IsPrimitive reports whether values of this sort carry data rather than
// e-class identity.
func (s *Sort) IsPrimitive() bool { return s.Kind != KindEq }

// Value is a single engine value: an e-class ID for eq-sorts or a payload
// for primitive sorts. The interpretation of Bits depends on Sort.Kind:
//
//	KindEq     e-class ID (union-find element)
//	KindI64    int64 bits
//	KindF64    math.Float64bits
//	KindString index into the graph's string pool
//	KindBool   0 or 1
//	KindVec    index into the graph's vector pool
//	KindUnit   always 0
type Value struct {
	Sort *Sort
	Bits uint64
}

// I64Value wraps an int64 as a Value of sort s (s must be KindI64).
func I64Value(s *Sort, v int64) Value { return Value{Sort: s, Bits: uint64(v)} }

// F64Value wraps a float64 as a Value of sort s (s must be KindF64).
func F64Value(s *Sort, v float64) Value { return Value{Sort: s, Bits: math.Float64bits(v)} }

// BoolValue wraps a bool as a Value of sort s (s must be KindBool).
func BoolValue(s *Sort, v bool) Value {
	var b uint64
	if v {
		b = 1
	}
	return Value{Sort: s, Bits: b}
}

// AsI64 returns the int64 payload.
func (v Value) AsI64() int64 { return int64(v.Bits) }

// AsF64 returns the float64 payload.
func (v Value) AsF64() float64 { return math.Float64frombits(v.Bits) }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.Bits != 0 }

// ClassID returns the e-class identifier of an eq-sort value.
func (v Value) ClassID() uint32 { return uint32(v.Bits) }

// stringPool interns strings so Value equality on KindString is bit
// equality. Interning is mutex-guarded because rule matching runs
// concurrently and string primitives may intern new values.
type stringPool struct {
	mu     sync.Mutex
	byText map[string]uint32
	texts  []string
}

func newStringPool() *stringPool {
	return &stringPool{byText: make(map[string]uint32)}
}

func (p *stringPool) intern(s string) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.byText[s]; ok {
		return id
	}
	id := uint32(len(p.texts))
	p.texts = append(p.texts, s)
	p.byText[s] = id
	return id
}

func (p *stringPool) get(id uint32) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.texts[id]
}

// vecPool hash-conses vectors of values. Two vectors with identical
// (canonical) contents share an index, so Value equality on KindVec is bit
// equality for canonical values. Interning is mutex-guarded for the
// concurrent match phase (vec-of premises intern new vectors).
type vecPool struct {
	mu    sync.Mutex
	byKey map[string]uint32
	vecs  [][]Value
}

func newVecPool() *vecPool {
	return &vecPool{byKey: make(map[string]uint32)}
}

func vecKey(elems []Value) string {
	buf := make([]byte, 0, len(elems)*8)
	for _, e := range elems {
		buf = appendValueBits(buf, e)
	}
	return string(buf)
}

func appendValueBits(buf []byte, v Value) []byte {
	b := v.Bits
	return append(buf,
		byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
		byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
}

func (p *vecPool) intern(elems []Value) uint32 {
	key := vecKey(elems)
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.byKey[key]; ok {
		return id
	}
	id := uint32(len(p.vecs))
	stored := make([]Value, len(elems))
	copy(stored, elems)
	p.vecs = append(p.vecs, stored)
	p.byKey[key] = id
	return id
}

func (p *vecPool) get(id uint32) []Value {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vecs[id]
}
