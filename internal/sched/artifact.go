package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaV1 tags the versioned schedule artifact. Readers reject other
// schemas so a format change can never be misread silently.
const SchemaV1 = "dialegg-schedule/v1"

// TunerInfo records how a tuned artifact was produced — provenance for
// humans and the ablation tables, never consulted by loaders.
type TunerInfo struct {
	// Workloads names the corpus the tuner replayed.
	Workloads []string `json:"workloads,omitempty"`
	// Objective is the cost the search minimized (e.g. "rows_scanned").
	Objective string `json:"objective,omitempty"`
	// Budget and Evaluated count candidate evaluations allowed and spent.
	Budget    int `json:"budget,omitempty"`
	Evaluated int `json:"evaluated,omitempty"`
}

// RuleOverride tunes one rule inside a ruleset entry. Zero fields inherit
// the entry-wide parameters.
type RuleOverride struct {
	Rule string `json:"rule"`
	// Threshold/BanLength apply to backoff entries.
	Threshold int `json:"threshold,omitempty"`
	BanLength int `json:"ban_length,omitempty"`
	// MatchLimit applies to matchlimit entries (negative = uncapped).
	MatchLimit int `json:"match_limit,omitempty"`
}

// RulesetSchedule is one rule set's tuned strategy. The empty RuleSet
// name is the default entry, used when no named entry matches — it is
// what makes a tuned artifact loadable against rule sets the tuner never
// saw (they get the globally best strategy instead of an error).
type RulesetSchedule struct {
	RuleSet string `json:"ruleset"`
	// Scheduler is the strategy kind: "simple", "backoff", or
	// "matchlimit".
	Scheduler string `json:"scheduler"`
	// Backoff parameters (zero = strategy default).
	Threshold int `json:"threshold,omitempty"`
	Factor    int `json:"factor,omitempty"`
	BanLength int `json:"ban_length,omitempty"`
	// MatchLimit parameters (zero = strategy default).
	MatchLimit int `json:"match_limit,omitempty"`
	// Rules holds per-rule overrides, sorted by rule name.
	Rules []RuleOverride `json:"rules,omitempty"`
	// BaselineCost/TunedCost record the tuner's objective value under the
	// Simple baseline and under this entry, for the ablation record.
	BaselineCost int64 `json:"baseline_cost,omitempty"`
	TunedCost    int64 `json:"tuned_cost,omitempty"`
}

// Artifact is the versioned, deterministic schedule file egg-opt, egglog,
// and egg-serve load with -schedule: schema tag, optional tuner
// provenance, and per-ruleset strategies sorted by ruleset name.
type Artifact struct {
	Schema   string            `json:"schema"`
	Tuner    *TunerInfo        `json:"tuner,omitempty"`
	Rulesets []RulesetSchedule `json:"rulesets"`
}

// NewArtifact returns an empty v1 artifact.
func NewArtifact() *Artifact { return &Artifact{Schema: SchemaV1} }

// Canonical sorts the artifact into its deterministic order (rulesets by
// name, overrides by rule) so Encode is byte-stable regardless of build
// order.
func (a *Artifact) Canonical() {
	sort.Slice(a.Rulesets, func(i, j int) bool { return a.Rulesets[i].RuleSet < a.Rulesets[j].RuleSet })
	for i := range a.Rulesets {
		rs := &a.Rulesets[i]
		sort.Slice(rs.Rules, func(x, y int) bool { return rs.Rules[x].Rule < rs.Rules[y].Rule })
	}
}

// Encode canonicalizes and renders the artifact as indented JSON with a
// trailing newline (the repo's artifact convention).
func (a *Artifact) Encode() ([]byte, error) {
	a.Canonical()
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile encodes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadArtifact loads and lints a schedule artifact.
func ReadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("sched: %s: %w", path, err)
	}
	if err := a.Lint(); err != nil {
		return nil, fmt.Errorf("sched: %s: %w", path, err)
	}
	return &a, nil
}

// Lint checks the artifact's structural contract: the exact v1 schema,
// rulesets sorted and unique by name, known scheduler kinds, sane
// parameters, and overrides sorted and unique per entry. A linted
// artifact always builds (Build cannot fail on it).
func (a *Artifact) Lint() error {
	if a.Schema != SchemaV1 {
		return fmt.Errorf("schema %q, want %q", a.Schema, SchemaV1)
	}
	if len(a.Rulesets) == 0 {
		return fmt.Errorf("no ruleset entries")
	}
	for i := range a.Rulesets {
		rs := &a.Rulesets[i]
		label := rs.RuleSet
		if label == "" {
			label = "(default)"
		}
		if i > 0 {
			switch prev := a.Rulesets[i-1].RuleSet; {
			case rs.RuleSet == prev:
				return fmt.Errorf("duplicate ruleset entry %s", label)
			case rs.RuleSet < prev:
				return fmt.Errorf("ruleset entries not sorted: %s after %q", label, prev)
			}
		}
		switch rs.Scheduler {
		case "simple", "backoff", "matchlimit":
		default:
			return fmt.Errorf("ruleset %s: unknown scheduler %q", label, rs.Scheduler)
		}
		if rs.Threshold < 0 || rs.BanLength < 0 || rs.MatchLimit < 0 {
			return fmt.Errorf("ruleset %s: negative parameter", label)
		}
		if rs.Factor != 0 && rs.Factor < 2 {
			return fmt.Errorf("ruleset %s: factor %d < 2 (backoff must grow geometrically)", label, rs.Factor)
		}
		if rs.Scheduler == "simple" && (rs.Threshold != 0 || rs.Factor != 0 || rs.BanLength != 0 || rs.MatchLimit != 0 || len(rs.Rules) != 0) {
			return fmt.Errorf("ruleset %s: simple takes no parameters", label)
		}
		for j := range rs.Rules {
			o := &rs.Rules[j]
			if o.Rule == "" {
				return fmt.Errorf("ruleset %s: override with empty rule name", label)
			}
			if j > 0 {
				switch prev := rs.Rules[j-1].Rule; {
				case o.Rule == prev:
					return fmt.Errorf("ruleset %s: duplicate override for rule %q", label, o.Rule)
				case o.Rule < prev:
					return fmt.Errorf("ruleset %s: overrides not sorted: %q after %q", label, o.Rule, prev)
				}
			}
			if o.Threshold < 0 || o.BanLength < 0 {
				return fmt.Errorf("ruleset %s: rule %q: negative parameter", label, o.Rule)
			}
		}
	}
	return nil
}

// For resolves the entry for a rule set name: the exact match if one
// exists, else the default ("") entry, else nil.
func (a *Artifact) For(ruleset string) *RulesetSchedule {
	var def *RulesetSchedule
	for i := range a.Rulesets {
		switch a.Rulesets[i].RuleSet {
		case ruleset:
			return &a.Rulesets[i]
		case "":
			def = &a.Rulesets[i]
		}
	}
	return def
}

// Build constructs the entry's Scheduler.
func (rs *RulesetSchedule) Build() (Scheduler, error) {
	switch rs.Scheduler {
	case "simple":
		return Simple{}, nil
	case "backoff":
		b := Backoff{Threshold: rs.Threshold, Factor: rs.Factor, BanLength: rs.BanLength}
		if len(rs.Rules) > 0 {
			b.Rules = make(map[string]BackoffRule, len(rs.Rules))
			for _, o := range rs.Rules {
				b.Rules[o.Rule] = BackoffRule{Threshold: o.Threshold, BanLength: o.BanLength}
			}
		}
		return b, nil
	case "matchlimit":
		m := MatchLimit{Limit: rs.MatchLimit}
		if len(rs.Rules) > 0 {
			m.Rules = make(map[string]int, len(rs.Rules))
			for _, o := range rs.Rules {
				m.Rules[o.Rule] = o.MatchLimit
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", rs.Scheduler)
	}
}
