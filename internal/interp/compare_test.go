package interp

import (
	"math"
	"testing"
)

func TestToleranceExactPolicy(t *testing.T) {
	tol := Exact
	cases := []struct {
		a, b float64
		eq   bool
	}{
		{1.5, 1.5, true},
		{0.0, math.Copysign(0, -1), true}, // ±0 identified
		{math.NaN(), math.NaN(), true},    // NaN payloads not observable
		{math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), math.MaxFloat64, false},
		{1.0, math.Nextafter(1, 2), false},
	}
	for _, c := range cases {
		if got := tol.EqualFloats(c.a, c.b); got != c.eq {
			t.Errorf("Exact.EqualFloats(%v, %v) = %t, want %t", c.a, c.b, got, c.eq)
		}
	}
}

func TestToleranceULP(t *testing.T) {
	tol := Tolerance{ULPs: 4}
	one := 1.0
	within := one
	for i := 0; i < 4; i++ {
		within = math.Nextafter(within, 2)
	}
	beyond := math.Nextafter(within, 2)
	if !tol.EqualFloats(one, within) {
		t.Errorf("4 ulps apart should compare equal")
	}
	if tol.EqualFloats(one, beyond) {
		t.Errorf("5 ulps apart should compare unequal")
	}
	// The ULP line is continuous across zero: the neighbors of +0 and -0
	// are 2 ulps apart.
	a := math.Nextafter(0, 1)
	b := math.Nextafter(math.Copysign(0, -1), -1)
	if d := ulpDistance(a, b); d != 2 {
		t.Errorf("ulpDistance across zero = %d, want 2", d)
	}
	// Loose tolerances never bless an overflow to infinity.
	if (Tolerance{ULPs: 1 << 60, Rel: 1e10}).EqualFloats(math.Inf(1), math.MaxFloat64) {
		t.Errorf("inf vs finite must stay unequal under any tolerance")
	}
}

func TestToleranceRelAbs(t *testing.T) {
	if !(Tolerance{Rel: 1e-6}).EqualFloats(1e6, 1e6+0.5) {
		t.Errorf("rel 1e-6 should accept 0.5 ppm at 1e6")
	}
	if (Tolerance{Rel: 1e-9}).EqualFloats(1e6, 1e6+0.5) {
		t.Errorf("rel 1e-9 should reject 0.5 at 1e6")
	}
	if !(Tolerance{Abs: 1e-3}).EqualFloats(0, 1e-4) {
		t.Errorf("abs 1e-3 should accept 1e-4")
	}
}

func TestCompareValuesKindsAndTensors(t *testing.T) {
	if err := Exact.CompareValues(IntValue(3), IntValue(3)); err != nil {
		t.Errorf("equal ints: %v", err)
	}
	if err := Exact.CompareValues(IntValue(3), FloatValue(3)); err == nil {
		t.Errorf("kind mismatch must fail")
	}
	if err := Exact.CompareValues(BoolValue(true), BoolValue(false)); err == nil {
		t.Errorf("bool mismatch must fail")
	}

	a := NewFloatTensor(2, 2)
	b := NewFloatTensor(2, 2)
	copy(a.F, []float64{1, 2, 3, 4})
	copy(b.F, []float64{1, 2, 3, 4})
	if err := Exact.CompareValues(TensorValue(a), TensorValue(b)); err != nil {
		t.Errorf("equal tensors: %v", err)
	}
	b.F[3] = 4.25
	if err := Exact.CompareValues(TensorValue(a), TensorValue(b)); err == nil {
		t.Errorf("tensor element mismatch must fail")
	}
	if err := Exact.CompareValues(TensorValue(NewFloatTensor(2)), TensorValue(NewFloatTensor(3))); err == nil {
		t.Errorf("tensor shape mismatch must fail")
	}
	if err := Exact.CompareValues(TensorValue(NewFloatTensor(2)), TensorValue(NewIntTensor(2))); err == nil {
		t.Errorf("tensor element-class mismatch must fail")
	}

	if err := Exact.CompareResults(
		[]Value{IntValue(1), FloatValue(2)},
		[]Value{IntValue(1), FloatValue(2)}); err != nil {
		t.Errorf("equal results: %v", err)
	}
	if err := Exact.CompareResults([]Value{IntValue(1)}, nil); err == nil {
		t.Errorf("result count mismatch must fail")
	}
}
