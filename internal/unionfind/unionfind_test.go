package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeSetDense(t *testing.T) {
	u := New()
	for i := 0; i < 100; i++ {
		if got := u.MakeSet(); got != uint32(i) {
			t.Fatalf("MakeSet #%d = %d, want %d", i, got, i)
		}
	}
	if u.Len() != 100 {
		t.Fatalf("Len = %d, want 100", u.Len())
	}
}

func TestFindSingleton(t *testing.T) {
	u := New()
	a := u.MakeSet()
	if u.Find(a) != a {
		t.Errorf("Find(%d) = %d, want itself", a, u.Find(a))
	}
	if u.SizeOf(a) != 1 {
		t.Errorf("SizeOf = %d, want 1", u.SizeOf(a))
	}
}

func TestUnionBasic(t *testing.T) {
	u := New()
	a, b, c := u.MakeSet(), u.MakeSet(), u.MakeSet()
	u.Union(a, b)
	if !u.SameSet(a, b) {
		t.Error("a and b should be in the same set after Union")
	}
	if u.SameSet(a, c) {
		t.Error("a and c should not be in the same set")
	}
	if u.SizeOf(a) != 2 {
		t.Errorf("SizeOf(a) = %d, want 2", u.SizeOf(a))
	}
	u.Union(b, c)
	if !u.SameSet(a, c) {
		t.Error("transitivity: a ~ c expected")
	}
	if u.SizeOf(c) != 3 {
		t.Errorf("SizeOf(c) = %d, want 3", u.SizeOf(c))
	}
}

func TestUnionIdempotent(t *testing.T) {
	u := New()
	a, b := u.MakeSet(), u.MakeSet()
	r1 := u.Union(a, b)
	r2 := u.Union(a, b)
	if r1 != r2 {
		t.Errorf("repeated Union returned different roots: %d vs %d", r1, r2)
	}
	if u.SizeOf(a) != 2 {
		t.Errorf("size inflated by repeated union: %d", u.SizeOf(a))
	}
}

func TestUnionInto(t *testing.T) {
	u := New()
	ids := make([]uint32, 10)
	for i := range ids {
		ids[i] = u.MakeSet()
	}
	// Build a big set rooted anywhere.
	for i := 1; i < 5; i++ {
		u.Union(ids[0], ids[i])
	}
	// Force ids[9] to be the representative even though its set is smaller.
	root := u.UnionInto(ids[9], ids[0])
	if root != ids[9] {
		t.Fatalf("UnionInto root = %d, want %d", root, ids[9])
	}
	if u.Find(ids[0]) != ids[9] {
		t.Errorf("Find(ids[0]) = %d, want %d", u.Find(ids[0]), ids[9])
	}
}

func TestReset(t *testing.T) {
	u := NewWithCapacity(4)
	u.MakeSet()
	u.MakeSet()
	u.Reset()
	if u.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", u.Len())
	}
	if got := u.MakeSet(); got != 0 {
		t.Fatalf("MakeSet after Reset = %d, want 0", got)
	}
}

// TestAgainstNaive cross-checks the forest against a naive quadratic
// implementation on random union sequences.
func TestAgainstNaive(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		u := New()
		naive := make([]int, n) // naive[i] = set label
		for i := 0; i < n; i++ {
			u.MakeSet()
			naive[i] = i
		}
		for step := 0; step < 300; step++ {
			a := uint32(rng.Intn(n))
			b := uint32(rng.Intn(n))
			u.Union(a, b)
			la, lb := naive[a], naive[b]
			if la != lb {
				for i := range naive {
					if naive[i] == lb {
						naive[i] = la
					}
				}
			}
			// Spot-check a few pairs.
			for k := 0; k < 5; k++ {
				x := uint32(rng.Intn(n))
				y := uint32(rng.Intn(n))
				if u.SameSet(x, y) != (naive[x] == naive[y]) {
					t.Fatalf("trial %d step %d: SameSet(%d,%d)=%v, naive=%v",
						trial, step, x, y, u.SameSet(x, y), naive[x] == naive[y])
				}
			}
		}
	}
}

// Property: Find is stable — calling it twice yields the same root, and the
// root is always a member of its own set.
func TestFindStableProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		u := New()
		const n = 32
		for i := 0; i < n; i++ {
			u.MakeSet()
		}
		for _, op := range ops {
			a := uint32(op % n)
			b := uint32((op / n) % n)
			u.Union(a, b)
		}
		for i := uint32(0); i < n; i++ {
			r := u.Find(i)
			if u.Find(i) != r || u.Find(r) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 14
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := NewWithCapacity(n)
		for j := 0; j < n; j++ {
			u.MakeSet()
		}
		for j := 1; j < n; j++ {
			u.Union(uint32(j), uint32(j/2))
		}
		if u.SizeOf(0) != n {
			b.Fatal("bad size")
		}
	}
}
