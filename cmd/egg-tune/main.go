// Command egg-tune is the offline scheduling autotuner: it replays a
// corpus of representative workloads under candidate rule-scheduling
// strategies (internal/sched), searches for the cheapest one whose
// extraction stays byte-identical to the unscheduled baseline, and emits
// a versioned dialegg-schedule/v1 artifact that egg-opt, egglog, and
// egg-serve load with -schedule.
//
// Usage:
//
//	egg-tune -o schedule.json             # tune the full corpus
//	egg-tune -workloads chain16 -budget 8 # quick, one workload
//	egg-tune lint schedule.json           # validate an artifact
//
// The objective is total match-phase row visits (rows_scanned), the
// engine's deterministic cost proxy: it does not move with the machine,
// so tuning results are reproducible. Candidates that change the
// extracted module are rejected outright — a tuned schedule may only
// change how fast saturation gets there, never where it lands.
//
// The search is a coarse parameter grid followed by a greedy hill-climb
// from the best grid point, bounded by -budget evaluations per workload.
// Each workload maps to the bundled rule set it exercises; the emitted
// artifact carries one entry per rule set plus a default entry (the
// globally best strategy) so unknown rule sets degrade gracefully.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dialegg/internal/bench"
	"dialegg/internal/dialects"
	"dialegg/internal/dialegg"
	"dialegg/internal/egraph"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
	"dialegg/internal/sched"
)

// workload is one tuning corpus entry: an MLIR module, the rule set it
// saturates under, and the run bounds. RuleSet names the artifact entry
// the tuned strategy is written to.
type workload struct {
	Name    string
	RuleSet string
	Source  string
	Rules   []string
	Config  egraph.RunConfig
}

// commAssocRules is the classic exploder: commutativity+associativity
// over integer addition, the workload where throttling pays most.
const commAssocRules = `
(rewrite (arith_addi ?a ?b ?t) (arith_addi ?b ?a ?t) :name "addi-comm")
(rewrite (arith_addi (arith_addi ?a ?b ?t) ?c ?t)
         (arith_addi ?a (arith_addi ?b ?c ?t) ?t) :name "addi-assoc")
`

// addChainSource builds an n-argument arith.addi chain.
func addChainSource(n int) string {
	var b strings.Builder
	b.WriteString("func.func @chain(")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%%x%d: i64", i)
	}
	b.WriteString(") -> i64 {\n  %t1 = arith.addi %x0, %x1 : i64\n")
	for i := 2; i < n; i++ {
		fmt.Fprintf(&b, "  %%t%d = arith.addi %%t%d, %%x%d : i64\n", i, i-1, i)
	}
	fmt.Fprintf(&b, "  func.return %%t%d : i64\n}\n", n-1)
	return b.String()
}

// corpus returns the tuning workloads: the paper's matmul-chain and
// polynomial benchmarks plus the comm/assoc explosion. Bounds mirror the
// benchmark harness at CI scale so a tune run stays in seconds.
func corpus() []workload {
	return []workload{
		{
			Name:    "chain16",
			RuleSet: "matmul",
			Source:  bench.MatmulChainSource("mm16", bench.NMMDims(16)),
			Rules:   rules.MatmulChain(),
			Config:  egraph.RunConfig{IterLimit: 120, NodeLimit: 2_000_000, MatchLimit: 2_000_000},
		},
		{
			Name:    "poly",
			RuleSet: "poly",
			Source:  bench.PolySource(64),
			Rules:   rules.Poly(),
			Config:  egraph.RunConfig{IterLimit: 64, NodeLimit: 1_000_000, MatchLimit: 1_000_000},
		},
		{
			Name:    "commassoc",
			RuleSet: "", // the artifact's default entry
			Source:  addChainSource(8),
			Rules:   rules.ImgConv(), // carrier rule set; the exploder rides along
			Config:  egraph.RunConfig{IterLimit: 16, NodeLimit: 500_000, MatchLimit: 500_000},
		},
	}
}

// evalResult is one candidate evaluation: the deterministic objective
// and the extracted module used as the identity guard.
type evalResult struct {
	Cost int64
	MLIR string
	Iter int
	Stop string
}

// evaluate saturates the workload under s and extracts.
func evaluate(w workload, s sched.Scheduler) (evalResult, error) {
	reg := dialects.NewRegistry()
	m, err := mlir.ParseModule(w.Source, reg)
	if err != nil {
		return evalResult{}, fmt.Errorf("%s: parse: %w", w.Name, err)
	}
	cfg := w.Config
	cfg.Scheduler = s
	cfg.Workers = 1
	ruleSrcs := w.Rules
	if w.Name == "commassoc" {
		ruleSrcs = append(append([]string{}, ruleSrcs...), commAssocRules)
	}
	opt := dialegg.NewOptimizer(dialegg.Options{RuleSources: ruleSrcs, RunConfig: cfg})
	rep, err := opt.OptimizeModule(m)
	if err != nil {
		return evalResult{}, fmt.Errorf("%s: optimize: %w", w.Name, err)
	}
	return evalResult{
		Cost: rep.Run.RowsScanned,
		MLIR: mlir.PrintModule(m, reg),
		Iter: rep.Run.Iterations,
		Stop: string(rep.Run.Stop),
	}, nil
}

// candidate pairs a strategy with the artifact entry that reproduces it.
type candidate struct {
	Sched sched.Scheduler
	Entry sched.RulesetSchedule // Scheduler/params filled; RuleSet stamped later
}

func backoffCand(threshold, factor, ban int) candidate {
	return candidate{
		Sched: sched.Backoff{Threshold: threshold, Factor: factor, BanLength: ban},
		Entry: sched.RulesetSchedule{Scheduler: "backoff", Threshold: threshold, Factor: factor, BanLength: ban},
	}
}

func matchLimitCand(limit int) candidate {
	return candidate{
		Sched: sched.MatchLimit{Limit: limit},
		Entry: sched.RulesetSchedule{Scheduler: "matchlimit", MatchLimit: limit},
	}
}

// grid is the coarse first-stage search space.
func grid() []candidate {
	var out []candidate
	for _, threshold := range []int{8, 32, 128, 512} {
		for _, ban := range []int{2, 5} {
			out = append(out, backoffCand(threshold, 2, ban))
		}
	}
	for _, limit := range []int{64, 256, 1024} {
		out = append(out, matchLimitCand(limit))
	}
	return out
}

// neighbors yields the hill-climb moves from a candidate: each integer
// parameter doubled and halved (floors keep them meaningful).
func neighbors(c candidate) []candidate {
	var out []candidate
	e := c.Entry
	switch e.Scheduler {
	case "backoff":
		for _, t := range []int{e.Threshold * 2, e.Threshold / 2} {
			if t >= 1 {
				out = append(out, backoffCand(t, e.Factor, e.BanLength))
			}
		}
		for _, b := range []int{e.BanLength * 2, e.BanLength / 2} {
			if b >= 1 {
				out = append(out, backoffCand(e.Threshold, e.Factor, b))
			}
		}
		if e.Factor == 2 {
			out = append(out, backoffCand(e.Threshold, 4, e.BanLength))
		} else {
			out = append(out, backoffCand(e.Threshold, 2, e.BanLength))
		}
	case "matchlimit":
		for _, l := range []int{e.MatchLimit * 2, e.MatchLimit / 2} {
			if l >= 1 {
				out = append(out, matchLimitCand(l))
			}
		}
	}
	return out
}

// tuneOne searches one workload within the evaluation budget and returns
// its artifact entry (always stamped with baseline/tuned cost, "simple"
// when nothing beat the baseline) plus the evaluations spent.
func tuneOne(w workload, budget int, verbose bool) (sched.RulesetSchedule, int, error) {
	base, err := evaluate(w, nil)
	if err != nil {
		return sched.RulesetSchedule{}, 0, err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "egg-tune: %s baseline: %d rows, %d iters, stop %s\n",
			w.Name, base.Cost, base.Iter, base.Stop)
	}
	best := candidate{Sched: sched.Simple{}, Entry: sched.RulesetSchedule{Scheduler: "simple"}}
	bestCost := base.Cost
	evals := 0
	try := func(c candidate) error {
		if evals >= budget {
			return nil
		}
		evals++
		r, err := evaluate(w, c.Sched)
		if err != nil {
			return err
		}
		ok := r.MLIR == base.MLIR
		if verbose {
			verdict := "rejected (extraction changed)"
			if ok {
				verdict = fmt.Sprintf("%d rows (%+.1f%%)", r.Cost, 100*float64(r.Cost-base.Cost)/float64(base.Cost))
			}
			fmt.Fprintf(os.Stderr, "egg-tune: %s %-40s %s\n", w.Name, c.Sched.Fingerprint(), verdict)
		}
		if ok && r.Cost < bestCost {
			best, bestCost = c, r.Cost
		}
		return nil
	}
	for _, c := range grid() {
		if err := try(c); err != nil {
			return sched.RulesetSchedule{}, evals, err
		}
	}
	// Greedy hill-climb: take the best neighbor until none improves or
	// the budget runs out.
	for best.Entry.Scheduler != "simple" && evals < budget {
		improvedFrom := bestCost
		for _, c := range neighbors(best) {
			if err := try(c); err != nil {
				return sched.RulesetSchedule{}, evals, err
			}
		}
		if bestCost == improvedFrom {
			break
		}
	}
	entry := best.Entry
	entry.RuleSet = w.RuleSet
	entry.BaselineCost = base.Cost
	entry.TunedCost = bestCost
	if entry.Scheduler == "simple" {
		// Lint forbids parameters on simple entries; costs are fine.
		entry.Threshold, entry.Factor, entry.BanLength, entry.MatchLimit = 0, 0, 0, 0
	}
	return entry, evals, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(runLint(os.Args[2:]))
	}
	out := flag.String("o", "schedule.json", "output path for the dialegg-schedule/v1 artifact")
	budget := flag.Int("budget", 24, "candidate evaluations per workload (grid first, then hill-climb)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: the full corpus)")
	verbose := flag.Bool("v", false, "log every candidate evaluation to stderr")
	flag.Parse()

	selected := corpus()
	if *workloads != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*workloads, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var subset []workload
		for _, w := range selected {
			if want[w.Name] {
				subset = append(subset, w)
				delete(want, w.Name)
			}
		}
		if len(want) > 0 {
			for n := range want {
				fmt.Fprintf(os.Stderr, "egg-tune: unknown workload %q\n", n)
			}
			os.Exit(2)
		}
		selected = subset
	}

	art := sched.NewArtifact()
	info := &sched.TunerInfo{Objective: "rows_scanned", Budget: *budget}
	haveDefault := false
	fmt.Printf("%-10s %-10s %12s %12s %8s  %s\n", "workload", "ruleset", "baseline", "tuned", "delta", "strategy")
	for _, w := range selected {
		entry, evals, err := tuneOne(w, *budget, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "egg-tune:", err)
			os.Exit(1)
		}
		info.Workloads = append(info.Workloads, w.Name)
		info.Evaluated += evals
		art.Rulesets = append(art.Rulesets, entry)
		if entry.RuleSet == "" {
			haveDefault = true
		}
		label := entry.RuleSet
		if label == "" {
			label = "(default)"
		}
		spec := entry.Scheduler
		if s, err := entry.Build(); err == nil {
			spec = s.Fingerprint()
		}
		fmt.Printf("%-10s %-10s %12d %12d %+7.1f%%  %s\n",
			w.Name, label, entry.BaselineCost, entry.TunedCost,
			100*float64(entry.TunedCost-entry.BaselineCost)/float64(entry.BaselineCost), spec)
	}
	if !haveDefault {
		// Unknown rule sets degrade to the seed behavior rather than an
		// arbitrary tuned strategy.
		art.Rulesets = append(art.Rulesets, sched.RulesetSchedule{RuleSet: "", Scheduler: "simple"})
	}
	art.Tuner = info
	art.Canonical()
	if err := art.Lint(); err != nil {
		fmt.Fprintln(os.Stderr, "egg-tune: emitted artifact fails lint:", err)
		os.Exit(1)
	}
	if err := art.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "egg-tune:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads, %d evaluations)\n", *out, len(selected), info.Evaluated)
}

// runLint implements `egg-tune lint <file>`: load (which lints) and
// report.
func runLint(args []string) int {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: egg-tune lint <schedule.json>")
		return 2
	}
	art, err := sched.ReadArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "egg-tune:", err)
		return 1
	}
	fmt.Printf("%s: OK (%s, %d ruleset entries)\n", fs.Arg(0), art.Schema, len(art.Rulesets))
	return 0
}
