package bench

import (
	"fmt"
	"testing"
	"time"

	"dialegg/internal/dialects"
	"dialegg/internal/dialegg"
	"dialegg/internal/egraph"
	"dialegg/internal/mlir"
	"dialegg/internal/rules"
)

// BenchmarkProfileOverhead prices the saturation profiler's three
// configurations on the chain16 and Poly workloads: off (the default —
// no RuleMetrics, no sampling, no blame; must be within noise of the
// seed since the disabled path is a nil/zero check), sampled (the
// recommended -profile -profile-sample 8 setup: per-rule metrics,
// every-8th-root selectivity counters, extraction blame), and full
// (-profile-sample 1: every match root instrumented). The off/sampled
// ratio is what a user pays to get blame tables; off/full bounds the
// worst case. Results are recorded in EXPERIMENTS.md.
func BenchmarkProfileOverhead(b *testing.B) {
	modes := []struct {
		name   string
		sample int
		on     bool
	}{
		{"off", 0, false},
		{"sampled", 8, true},
		{"full", 1, true},
	}
	workloads := []struct {
		name     string
		source   string
		ruleSrcs []string
	}{
		{"chain16", MatmulChainSource("mm16", NMMDims(16)), rules.MatmulChain()},
		{"Poly", PolySource(64), rules.Poly()},
	}
	for _, w := range workloads {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%s", w.name, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reg := dialects.NewRegistry()
					m, err := mlir.ParseModule(w.source, reg)
					if err != nil {
						b.Fatal(err)
					}
					opts := dialegg.Options{
						RuleSources: w.ruleSrcs,
						RunConfig: egraph.RunConfig{
							NodeLimit:     2_000_000,
							MatchLimit:    2_000_000,
							TimeLimit:     240 * time.Second,
							IterLimit:     120,
							Workers:       1,
							RuleMetrics:   mode.on,
							ProfileSample: mode.sample,
						},
						Blame: mode.on,
					}
					rep, err := dialegg.NewOptimizer(opts).OptimizeModule(m)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Run.Iterations == 0 {
						b.Fatalf("%s did not run", w.name)
					}
					if mode.on && len(rep.Blame) == 0 {
						b.Fatalf("%s: profiling on but no blame rows", w.name)
					}
				}
			})
		}
	}
}
