// Package dialects defines the MLIR dialects used by the paper's
// benchmarks — func, arith, math, scf, tensor, and linalg — with their
// pretty-syntax parsers, printers, verifiers, and canonicalization folds.
package dialects

import (
	"dialegg/internal/mlir"
)

// NewRegistry returns a registry with every dialect in this package
// registered.
func NewRegistry() *mlir.Registry {
	r := mlir.NewRegistry()
	RegisterBuiltin(r)
	RegisterFunc(r)
	RegisterArith(r)
	RegisterMath(r)
	RegisterSCF(r)
	RegisterTensor(r)
	RegisterLinalg(r)
	return r
}

// RegisterBuiltin registers the builtin dialect (the module container).
func RegisterBuiltin(r *mlir.Registry) {
	r.Register(&mlir.OpDef{
		Name: "builtin.module",
		Print: func(ps *mlir.PrintState, op *mlir.Operation) {
			ps.Write(" ")
			ps.PrintRegion(op.Regions[0])
		},
	})
}

// --- shared parse/print helpers ---

// parseBinaryOp reads `%a, %b [fastmath<f>] : type` and builds an op whose
// operands and single result all have that type.
func parseBinaryOp(name string, allowFastMath bool) func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
	return func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
		a, err := p.ParseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(","); err != nil {
			return nil, err
		}
		b, err := p.ParseOperand()
		if err != nil {
			return nil, err
		}
		var fm mlir.Attribute
		if allowFastMath {
			fm, err = p.ParseOptionalFastMath()
			if err != nil {
				return nil, err
			}
		}
		if err := p.Expect(":"); err != nil {
			return nil, err
		}
		t, err := p.ParseType()
		if err != nil {
			return nil, err
		}
		op := mlir.NewOperation(name, []*mlir.Value{a, b}, []mlir.Type{t})
		if fm != nil {
			op.SetAttr("fastmath", fm)
		}
		return op, nil
	}
}

func printBinaryOp(ps *mlir.PrintState, op *mlir.Operation) {
	ps.Write(" ")
	ps.PrintOperands(op.Operands)
	ps.PrintOptionalFastMath(op)
	ps.Write(" : " + op.Results[0].Typ.String())
}

// parseUnaryOp reads `%a [fastmath<f>] : type`.
func parseUnaryOp(name string, allowFastMath bool) func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
	return func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
		a, err := p.ParseOperand()
		if err != nil {
			return nil, err
		}
		var fm mlir.Attribute
		if allowFastMath {
			fm, err = p.ParseOptionalFastMath()
			if err != nil {
				return nil, err
			}
		}
		if err := p.Expect(":"); err != nil {
			return nil, err
		}
		t, err := p.ParseType()
		if err != nil {
			return nil, err
		}
		op := mlir.NewOperation(name, []*mlir.Value{a}, []mlir.Type{t})
		if fm != nil {
			op.SetAttr("fastmath", fm)
		}
		return op, nil
	}
}

// parseCastOp reads `%a : fromType to toType`.
func parseCastOp(name string) func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
	return func(p *mlir.Parser, st *mlir.OpParseState) (*mlir.Operation, error) {
		a, err := p.ParseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(":"); err != nil {
			return nil, err
		}
		from, err := p.ParseType()
		if err != nil {
			return nil, err
		}
		if !mlir.TypeEqual(a.Typ, from) {
			return nil, p.Errf("%s: operand has type %s, written %s", name, a.Typ, from)
		}
		if err := p.ParseKeyword("to"); err != nil {
			return nil, err
		}
		to, err := p.ParseType()
		if err != nil {
			return nil, err
		}
		return mlir.NewOperation(name, []*mlir.Value{a}, []mlir.Type{to}), nil
	}
}

func printCastOp(ps *mlir.PrintState, op *mlir.Operation) {
	ps.Write(" ")
	ps.PrintOperands(op.Operands)
	ps.Write(" : " + op.Operands[0].Typ.String() + " to " + op.Results[0].Typ.String())
}
