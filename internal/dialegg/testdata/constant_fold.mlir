// RULES: fold
// §7.1: 2 + 3 folds to 5 inside the e-graph.
func.func @fold() -> i32 {
  %c2 = arith.constant 2 : i32
  %c3 = arith.constant 3 : i32
  %sum = arith.addi %c2, %c3 : i32
  func.return %sum : i32
}
